"""The golden-scenario corpus: small committed runs with expected reports.

Each :class:`GoldenScenario` is a fully seeded simulation small enough to
run in a second or two; its expected :class:`~repro.core.results`
report is committed as JSON under ``tests/golden/expected/``. The
regression test (``tests/golden/test_golden.py``) and ``repro-verify
--all-golden`` re-run every scenario and compare field-for-field; after an
*intentional* behaviour change, refresh the corpus with ``repro-verify
--update-golden`` and review the JSON diff like any other code change.

The corpus deliberately spans the regimes the paper's claims hang on:
calm markets, seeded revocation storms, a correlated spike straddling a
billing boundary, a pure-spot outage, slow checkpoints during a storm,
multi-market and multi-region escapes, the all-on-demand baseline, and —
mirroring the regimes real ``DescribeSpotPriceHistory`` archives exhibit —
sustained-high-price markets, scarce-capacity (GPU-style) sharp-spike
trains, cross-region correlated storms, a CSV → streaming-ingest → mmap
segment replay, and a run on calibrations refit from a generated archive.
:data:`FLEET_SCENARIOS` extends it with a pinned multi-tenant
:class:`~repro.fleet.report.FleetReport` (shared market, shared spare
pool, churn) checked by the same machinery.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.bidding import ReactiveBidding
from repro.core.simulation import SimulationConfig, run_simulation_observed
from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec, ServiceSpec, synthesize_fleet
from repro.runtime.spec import StrategySpec
from repro.testkit.faults import FaultPlan
from repro.traces.calibration import MarketCalibration, calibration_for
from repro.traces.catalog import MarketKey
from repro.units import days, hours

__all__ = [
    "GoldenScenario",
    "GoldenFleetScenario",
    "SCENARIOS",
    "FLEET_SCENARIOS",
    "scenario_by_name",
    "run_scenario",
    "run_fleet_scenario",
    "check_scenarios",
    "update_golden",
    "default_golden_dir",
]

#: Environment override for the expected-report directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: Tolerance for float fields (JSON round-trips floats exactly; the
#: tolerance only guards against cross-platform libm differences).
REL_TOL = 1e-9


@dataclass(frozen=True)
class GoldenScenario:
    """One committed scenario: a name, a story, and a seeded config."""

    name: str
    description: str
    build: Callable[[], SimulationConfig]

    def config(self) -> SimulationConfig:
        return self.build()


def default_golden_dir() -> Path:
    """``tests/golden/expected`` relative to the repo root (overridable via
    the ``REPRO_GOLDEN_DIR`` environment variable)."""
    env = os.environ.get(GOLDEN_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "expected"


# ------------------------------------------------------------------- scenarios
_EAST = MarketKey("us-east-1a", "small")
_WEEK = days(7)


def _calm_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=11,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        label="golden/calm-single",
    )


def _calm_large() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(MarketKey("us-east-1a", "large")),
        seed=23,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("large",),
        label="golden/calm-large",
    )


def _storm_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=31,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(401, _WEEK, n_spikes=6, duration_s=1800.0),
        label="golden/storm-single",
    )


def _spike_at_boundary() -> SimulationConfig:
    # The spike opens 90 s before the lease's 5th billing boundary — the
    # window where revocation is cheapest for the provider-side adversary
    # and the partial-hour-free rule matters most.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=43,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(5) - 90.0, hours(2)),
        label="golden/spike-at-boundary",
    )


def _pure_spot_outage() -> SimulationConfig:
    # No on-demand fallback: a correlated spike forces a dark period.
    return SimulationConfig(
        strategy=StrategySpec.pure_spot(_EAST),
        seed=53,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(30), hours(4)),
        label="golden/pure-spot-outage",
    )


def _on_demand_baseline() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.on_demand(_EAST),
        seed=61,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        label="golden/on-demand-baseline",
    )


def _multi_market_storm() -> SimulationConfig:
    # Spikes hit only the small market, so the multi-market strategy can
    # escape sideways within the region.
    return SimulationConfig(
        strategy=StrategySpec.multi_market("us-east-1a"),
        seed=71,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small", "medium", "large", "xlarge"),
        faults=FaultPlan.revocation_storm(
            402, _WEEK, n_spikes=4, duration_s=3600.0, markets=("us-east-1a/small",)
        ),
        label="golden/multi-market-storm",
    )


def _multi_region() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "us-west-1a")),
        seed=83,
        horizon_s=_WEEK,
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium", "large", "xlarge"),
        label="golden/multi-region",
    )


def _multi_region_correlated() -> SimulationConfig:
    # Every market spikes at once: cross-region escape can't help, the
    # scheduler must ride out the storm on on-demand.
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "eu-west-1a")),
        seed=97,
        horizon_s=_WEEK,
        regions=("us-east-1a", "eu-west-1a"),
        sizes=("small", "medium", "large", "xlarge"),
        faults=FaultPlan.correlated_spike(days(2), hours(6)),
        label="golden/multi-region-correlated",
    )


def _slow_checkpoint_storm() -> SimulationConfig:
    # Storm plus degraded infrastructure: delayed/failing checkpoint
    # writes, doubled WAN disk copies, sluggish allocations.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=101,
        horizon_s=_WEEK,
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(
            403,
            _WEEK,
            n_spikes=5,
            duration_s=2700.0,
            checkpoint_delay_s=45.0,
            checkpoint_failure_rate=0.25,
            disk_copy_factor=2.0,
            startup_factor=1.5,
        ),
        label="golden/slow-checkpoint-storm",
    )


def _index_tracking_basket() -> SimulationConfig:
    # The Shastri & Irwin index tracker: a 3-market basket across two
    # regions, rebalanced within a 15 % band of the on-demand index.
    return SimulationConfig(
        strategy=StrategySpec.index_tracking(("us-east-1a", "us-west-1a")),
        seed=113,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        label="golden/index-tracking-basket",
    )


def _no_ft_storm() -> SimulationConfig:
    # No checkpoints: the correlated spike revokes the tenant, the
    # partial hour rides free, and recovery recomputes from the volume.
    return SimulationConfig(
        strategy=StrategySpec.no_fault_tolerance(_EAST),
        seed=127,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.correlated_spike(hours(30), hours(4)),
        label="golden/no-ft-storm",
    )


def _portfolio_bid_lp() -> SimulationConfig:
    # The LP bid family: per-epoch risk/cost program over four markets.
    return SimulationConfig(
        strategy=StrategySpec.portfolio_bid(("us-east-1a", "us-west-1a")),
        seed=131,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        label="golden/portfolio-bid-lp",
    )


# -------------------------------------------------- archive-regime scenarios
# Calibration presets for the regimes real DescribeSpotPriceHistory
# archives exhibit (sustained-high markets, scarce-capacity spike trains,
# correlated cross-region storms). Each preset stays inside the
# MarketCalibration validation ranges, so build_catalog accepts it as-is.
def _sustained_high_cal(region: str, size: str) -> MarketCalibration:
    """Calm level parked just under on-demand with little dispersion: spot
    barely undercuts the baseline, as several real markets did after the
    2011 EC2 repricing."""
    return calibration_for(
        region, size, calm_base_frac=0.88, calm_sigma=0.04, calm_reversion=0.5
    )


def _gpu_scarcity_cal(region: str, size: str) -> MarketCalibration:
    """Scarce-capacity market: frequent sharp excursions far past the 4x
    bid cap, the shape GPU/accelerator pools show under contention."""
    cal = calibration_for(region, size)
    return dataclasses.replace(
        cal,
        sharp_spikes=dataclasses.replace(
            cal.sharp_spikes, rate_per_hour=0.02, peak_lo_frac=5.0, peak_hi_frac=12.0
        ),
        spikes=dataclasses.replace(
            cal.spikes, rate_per_hour=2.0 * cal.spikes.rate_per_hour
        ),
    )


def _stormy_cal(region: str, size: str) -> MarketCalibration:
    """Most excursions arrive from the shared regional/global shock
    streams, so markets spike together instead of independently."""
    return calibration_for(
        region, size, regional_shock_share=0.55, global_shock_share=0.3
    )


def _quiet_cal(region: str, size: str) -> MarketCalibration:
    """An unusually placid market: every excursion class at a fifth of its
    default rate (some real EU markets sat nearly flat for months)."""
    cal = calibration_for(region, size)
    return dataclasses.replace(
        cal,
        blips=dataclasses.replace(cal.blips, rate_per_hour=0.2 * cal.blips.rate_per_hour),
        spikes=dataclasses.replace(cal.spikes, rate_per_hour=0.2 * cal.spikes.rate_per_hour),
        sharp_spikes=dataclasses.replace(
            cal.sharp_spikes, rate_per_hour=0.2 * cal.sharp_spikes.rate_per_hour
        ),
    )


def _sustained_high_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=137,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        calibrations={("us-east-1a", "small"): _sustained_high_cal("us-east-1a", "small")},
        label="golden/sustained-high-single",
    )


def _sustained_high_reactive() -> SimulationConfig:
    # Reactive bidding on a sustained-high market: the bid-the-ceiling
    # policy pays nearly on-demand rates, the regime where Fig 5's
    # proactive/reactive gap collapses.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        bidding=ReactiveBidding(),
        seed=139,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        calibrations={("us-east-1a", "small"): _sustained_high_cal("us-east-1a", "small")},
        label="golden/sustained-high-reactive",
    )


def _sustained_high_multi_market() -> SimulationConfig:
    # Only the small market is sustained-high; sideways escape within the
    # region recovers most of the spot discount.
    return SimulationConfig(
        strategy=StrategySpec.multi_market("us-east-1a"),
        seed=149,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small", "medium", "large", "xlarge"),
        calibrations={("us-east-1a", "small"): _sustained_high_cal("us-east-1a", "small")},
        label="golden/sustained-high-multi-market",
    )


def _sustained_high_pure_spot() -> SimulationConfig:
    # No on-demand fallback on a market that is expensive but rarely
    # revokes: high cost, little downtime.
    return SimulationConfig(
        strategy=StrategySpec.pure_spot(_EAST),
        seed=193,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        calibrations={("us-east-1a", "small"): _sustained_high_cal("us-east-1a", "small")},
        label="golden/sustained-high-pure-spot",
    )


_XL_EAST = MarketKey("us-east-1a", "xlarge")


def _gpu_scarcity_single() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(_XL_EAST),
        seed=151,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("xlarge",),
        calibrations={("us-east-1a", "xlarge"): _gpu_scarcity_cal("us-east-1a", "xlarge")},
        label="golden/gpu-scarcity-single",
    )


def _gpu_scarcity_no_ft() -> SimulationConfig:
    # Sharp spike trains against a tenant with no checkpoints: every
    # revocation recomputes from the volume.
    return SimulationConfig(
        strategy=StrategySpec.no_fault_tolerance(_XL_EAST),
        seed=157,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("xlarge",),
        calibrations={("us-east-1a", "xlarge"): _gpu_scarcity_cal("us-east-1a", "xlarge")},
        label="golden/gpu-scarcity-no-ft",
    )


def _gpu_scarcity_multi_market() -> SimulationConfig:
    # Scarcity hits only the xlarge market; the multi-market scheduler can
    # wait it out on the calmer sizes.
    return SimulationConfig(
        strategy=StrategySpec.multi_market("us-east-1a"),
        seed=163,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small", "medium", "large", "xlarge"),
        calibrations={("us-east-1a", "xlarge"): _gpu_scarcity_cal("us-east-1a", "xlarge")},
        label="golden/gpu-scarcity-multi-market",
    )


def _storm_cals(regions, sizes):
    return {(r, s): _stormy_cal(r, s) for r in regions for s in sizes}


def _correlated_storm_regional() -> SimulationConfig:
    # Heavy shared-shock shares: excursions synchronize within and across
    # regions, eroding the diversification the multi-region escape buys.
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "us-west-1a")),
        seed=167,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        calibrations=_storm_cals(("us-east-1a", "us-west-1a"), ("small", "medium")),
        label="golden/correlated-storm-regional",
    )


def _correlated_storm_global() -> SimulationConfig:
    # Correlated generator shocks plus a scripted all-market spike: the
    # worst case for cross-region hosting.
    return SimulationConfig(
        strategy=StrategySpec.multi_region(("us-east-1a", "eu-west-1a")),
        seed=173,
        horizon_s=days(3),
        regions=("us-east-1a", "eu-west-1a"),
        sizes=("small", "medium"),
        calibrations=_storm_cals(("us-east-1a", "eu-west-1a"), ("small", "medium")),
        faults=FaultPlan.correlated_spike(days(1), hours(3)),
        label="golden/correlated-storm-global",
    )


def _correlated_storm_portfolio() -> SimulationConfig:
    # The LP bid family under correlated shocks: predicted revocation risk
    # rises everywhere at once, stressing the risk-cap constraint.
    return SimulationConfig(
        strategy=StrategySpec.portfolio_bid(("us-east-1a", "us-west-1a")),
        seed=179,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        calibrations=_storm_cals(("us-east-1a", "us-west-1a"), ("small", "medium")),
        label="golden/correlated-storm-portfolio",
    )


def _correlated_storm_index() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.index_tracking(("us-east-1a", "us-west-1a")),
        seed=181,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        calibrations=_storm_cals(("us-east-1a", "us-west-1a"), ("small", "medium")),
        label="golden/correlated-storm-index",
    )


def _stability_weighted_storm() -> SimulationConfig:
    # The stability-weighted family pays a premium to avoid churn; a storm
    # on one market shows what that premium buys.
    return SimulationConfig(
        strategy=StrategySpec.stability(("us-east-1a", "us-west-1a"), stability_weight=2.0),
        seed=191,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        faults=FaultPlan.revocation_storm(
            404, days(3), n_spikes=3, duration_s=1800.0, markets=("us-east-1a/small",)
        ),
        label="golden/stability-weighted-storm",
    )


def _calm_quiet_eu() -> SimulationConfig:
    return SimulationConfig(
        strategy=StrategySpec.single(MarketKey("eu-west-1a", "large")),
        seed=197,
        horizon_s=days(3),
        regions=("eu-west-1a",),
        sizes=("large",),
        calibrations={("eu-west-1a", "large"): _quiet_cal("eu-west-1a", "large")},
        label="golden/calm-quiet-eu",
    )


def _storm_reactive() -> SimulationConfig:
    # Reactive bidding through a storm: every spike revokes immediately
    # (the ceiling bid is always crossed), maximizing migration traffic.
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        bidding=ReactiveBidding(),
        seed=223,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small",),
        faults=FaultPlan.revocation_storm(405, days(3), n_spikes=3, duration_s=1800.0),
        label="golden/storm-reactive",
    )


def _spike_train_medium() -> SimulationConfig:
    # A seeded three-spike train on the medium market: repeated forced
    # migrations with full recovery between spikes.
    return SimulationConfig(
        strategy=StrategySpec.single(MarketKey("us-east-1a", "medium")),
        seed=227,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("medium",),
        faults=FaultPlan.revocation_storm(406, days(3), n_spikes=3, duration_s=1200.0),
        label="golden/spike-train-medium",
    )


def _archive_roundtrip() -> SimulationConfig:
    # End-to-end data-path pin: generate one market, write it as an AWS
    # CSV archive, stream-ingest it into mmap-compiled segments, and run
    # the simulation off the memory-mapped catalog. The pinned report
    # freezes the CSV -> ingest -> mmap path's economics; the ingest test
    # suite separately proves it matches the in-memory path bit-for-bit.
    import tempfile

    from repro.traces.catalog import build_catalog
    from repro.traces.ingest import ingest_archive, load_segment_catalog
    from repro.traces.loader import save_aws_csv

    horizon = days(3)
    source = build_catalog(199, horizon, regions=("us-east-1a",), sizes=("small",))
    tmp = tempfile.TemporaryDirectory(prefix="repro-golden-segments-")
    root = Path(tmp.name)
    save_aws_csv(
        source.trace(_EAST),
        root / "archive.csv",
        instance_type="m1.small",
        availability_zone="us-east-1a",
    )
    ingest_archive(root / "archive.csv", root / "segments", horizon=horizon)
    catalog = load_segment_catalog(root / "segments")
    # The catalog's arrays are views over the segment files; keep the
    # temporary directory alive for as long as the catalog is.
    catalog._tmpdir = tmp
    return SimulationConfig(
        strategy=StrategySpec.single(_EAST),
        seed=199,
        horizon_s=horizon,
        regions=("us-east-1a",),
        sizes=("small",),
        catalog=catalog,
        label="golden/archive-roundtrip",
    )


def _refit_regenerated() -> SimulationConfig:
    # Closes the refit loop inside the corpus: fit the regime-switching
    # parameters to a generated two-market history, then simulate on
    # traces regenerated *from the fit*. Any drift in the fit -> generate
    # round trip shows up as a golden diff.
    from repro.traces.catalog import build_catalog
    from repro.traces.refit import fit_catalog

    source = build_catalog(7, days(10), regions=("us-east-1a",), sizes=("small", "medium"))
    fitted = fit_catalog(source, grid_step_s=900.0)
    return SimulationConfig(
        strategy=StrategySpec.multi_market("us-east-1a"),
        seed=211,
        horizon_s=days(3),
        regions=("us-east-1a",),
        sizes=("small", "medium"),
        calibrations=fitted,
        label="golden/refit-regenerated",
    )


SCENARIOS: Tuple[GoldenScenario, ...] = (
    GoldenScenario("calm-single", "single market, calm generated trace", _calm_single),
    GoldenScenario("calm-large", "large instance, calm generated trace", _calm_large),
    GoldenScenario("storm-single", "seeded 6-spike revocation storm", _storm_single),
    GoldenScenario(
        "spike-at-boundary", "correlated spike opening just before a billing boundary",
        _spike_at_boundary,
    ),
    GoldenScenario(
        "pure-spot-outage", "pure-spot strategy rides through a forced dark period",
        _pure_spot_outage,
    ),
    GoldenScenario(
        "on-demand-baseline", "all-on-demand control: no migrations, 100% cost",
        _on_demand_baseline,
    ),
    GoldenScenario(
        "multi-market-storm", "storm on one market, sideways escape available",
        _multi_market_storm,
    ),
    GoldenScenario("multi-region", "two-region deployment, calm markets", _multi_region),
    GoldenScenario(
        "multi-region-correlated", "all markets spike at once across regions",
        _multi_region_correlated,
    ),
    GoldenScenario(
        "slow-checkpoint-storm", "storm with failing checkpoints and slow copies",
        _slow_checkpoint_storm,
    ),
    GoldenScenario(
        "index-tracking-basket", "spot basket tracking the on-demand index",
        _index_tracking_basket,
    ),
    GoldenScenario(
        "no-ft-storm", "no-checkpoint tenant revoked by a correlated spike",
        _no_ft_storm,
    ),
    GoldenScenario(
        "portfolio-bid-lp", "LP risk/cost market selection over four markets",
        _portfolio_bid_lp,
    ),
    GoldenScenario(
        "sustained-high-single", "calm level parked just under on-demand",
        _sustained_high_single,
    ),
    GoldenScenario(
        "sustained-high-reactive", "reactive bidding where spot barely undercuts",
        _sustained_high_reactive,
    ),
    GoldenScenario(
        "sustained-high-multi-market", "sideways escape from one expensive market",
        _sustained_high_multi_market,
    ),
    GoldenScenario(
        "sustained-high-pure-spot", "pure spot on an expensive, rarely-revoking market",
        _sustained_high_pure_spot,
    ),
    GoldenScenario(
        "gpu-scarcity-single", "frequent sharp spikes past the 4x bid cap",
        _gpu_scarcity_single,
    ),
    GoldenScenario(
        "gpu-scarcity-no-ft", "scarcity spike train against a no-checkpoint tenant",
        _gpu_scarcity_no_ft,
    ),
    GoldenScenario(
        "gpu-scarcity-multi-market", "xlarge scarcity, calmer sizes available",
        _gpu_scarcity_multi_market,
    ),
    GoldenScenario(
        "correlated-storm-regional", "shared-shock shares synchronize two regions",
        _correlated_storm_regional,
    ),
    GoldenScenario(
        "correlated-storm-global", "correlated shocks plus a scripted all-market spike",
        _correlated_storm_global,
    ),
    GoldenScenario(
        "correlated-storm-portfolio", "LP bid family under correlated shocks",
        _correlated_storm_portfolio,
    ),
    GoldenScenario(
        "correlated-storm-index", "index tracker under correlated shocks",
        _correlated_storm_index,
    ),
    GoldenScenario(
        "stability-weighted-storm", "churn-averse family rides out a one-market storm",
        _stability_weighted_storm,
    ),
    GoldenScenario(
        "calm-quiet-eu", "placid EU market at a fifth of default excursion rates",
        _calm_quiet_eu,
    ),
    GoldenScenario(
        "storm-reactive", "reactive ceiling bids revoked by every storm spike",
        _storm_reactive,
    ),
    GoldenScenario(
        "spike-train-medium", "three-spike train with recovery between spikes",
        _spike_train_medium,
    ),
    GoldenScenario(
        "archive-roundtrip", "CSV -> streaming ingest -> mmap segment replay",
        _archive_roundtrip,
    ),
    GoldenScenario(
        "refit-regenerated", "simulate on calibrations refit from a generated archive",
        _refit_regenerated,
    ),
)


@dataclass(frozen=True)
class GoldenFleetScenario:
    """One committed fleet scenario: a seeded :class:`FleetSpec` whose
    :class:`~repro.fleet.report.FleetReport` is pinned as JSON."""

    name: str
    description: str
    build: Callable[[], FleetSpec]

    def spec(self) -> FleetSpec:
        return self.build()


def _fleet_small() -> FleetSpec:
    # Eight heterogeneous tenants plus seeded churn over a 2-region,
    # 2-size market grid: small enough for seconds, rich enough to
    # exercise the shared spare pool and the churn proration path. One
    # explicit index-tracking tenant pins the basket family in the fleet
    # corpus regardless of what the seeded cohort draw happens to pick.
    fleet = synthesize_fleet(
        8,
        seed=5,
        horizon_s=days(3),
        regions=("us-east-1a", "us-west-1a"),
        sizes=("small", "medium"),
        churn_per_week=4.0,
        spare_capacity=2,
    )
    tracker = ServiceSpec(
        name="svc-index-tracker",
        strategy=StrategySpec.index_tracking(("us-east-1a", "us-west-1a")),
    )
    return fleet.with_(services=fleet.services + (tracker,))


FLEET_SCENARIOS: Tuple[GoldenFleetScenario, ...] = (
    GoldenFleetScenario(
        "fleet-small",
        "8-service fleet with churn on a shared 4-market grid",
        _fleet_small,
    ),
)


def scenario_by_name(name: str):
    for s in (*SCENARIOS, *FLEET_SCENARIOS):
        if s.name == name:
            return s
    known = [s.name for s in SCENARIOS] + [s.name for s in FLEET_SCENARIOS]
    raise ConfigurationError(f"unknown golden scenario {name!r}; known: {known}")


# ------------------------------------------------------------------- execution
def run_scenario(scenario: GoldenScenario, verify: bool = True) -> Dict[str, object]:
    """Run one scenario (with the invariant oracles by default) and return
    its report as a JSON-ready dict."""
    observed = run_simulation_observed(scenario.config(), verify=verify)
    return dataclasses.asdict(observed.result)


def run_fleet_scenario(
    scenario: GoldenFleetScenario, verify: bool = True
) -> Dict[str, object]:
    """Run one fleet scenario (with the fleet invariant oracles by
    default) and return its :class:`~repro.fleet.report.FleetReport` as a
    JSON-ready dict."""
    from repro.fleet.runner import run_fleet

    return run_fleet(scenario.spec(), verify=verify).to_dict()


def _run_any(scenario, verify: bool) -> Dict[str, object]:
    if isinstance(scenario, GoldenFleetScenario):
        return run_fleet_scenario(scenario, verify=verify)
    return run_scenario(scenario, verify=verify)


def _expected_path(golden_dir: Path, scenario) -> Path:
    return golden_dir / f"{scenario.name}.json"


def _diff_value(path: str, e: object, a: object, out: List[str]) -> None:
    """Recursive comparison; problems are appended as ``path: detail``."""
    if isinstance(e, bool) or isinstance(a, bool):
        # bool is an int subclass — compare exactly, before the float branch.
        if e != a:
            out.append(f"{path}: expected {e!r}, got {a!r}")
    elif isinstance(e, float) and isinstance(a, (int, float)):
        if not math.isclose(e, float(a), rel_tol=REL_TOL, abs_tol=REL_TOL):
            out.append(f"{path}: expected {e!r}, got {a!r}")
    elif isinstance(e, dict) and isinstance(a, dict):
        for key in sorted(set(e) | set(a)):
            sub = f"{path}[{key!r}]" if path else str(key)
            if key not in e:
                out.append(f"{sub}: unexpected new field = {a[key]!r}")
            elif key not in a:
                out.append(f"{sub}: field missing (expected {e[key]!r})")
            else:
                _diff_value(sub, e[key], a[key], out)
    elif isinstance(e, (list, tuple)) and isinstance(a, (list, tuple)):
        if len(e) != len(a):
            out.append(f"{path}: expected {len(e)} item(s), got {len(a)}")
            return
        for i, (ev, av) in enumerate(zip(e, a)):
            _diff_value(f"{path}[{i}]", ev, av, out)
    elif e != a:
        out.append(f"{path}: expected {e!r}, got {a!r}")


def _diff(expected: Dict[str, object], actual: Dict[str, object]) -> List[str]:
    """Field-level differences between two (possibly nested) report dicts."""
    out: List[str] = []
    _diff_value("", expected, actual, out)
    return out


def check_scenarios(
    names: Optional[List[str]] = None,
    golden_dir: Optional[Path] = None,
    verify: bool = True,
) -> Dict[str, List[str]]:
    """Run scenarios and compare to their committed expected reports.

    Returns ``{scenario name: [differences]}`` — empty lists mean a clean
    match; a missing expected file reports as one difference.
    """
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    chosen = (
        [scenario_by_name(n) for n in names]
        if names
        else [*SCENARIOS, *FLEET_SCENARIOS]
    )
    out: Dict[str, List[str]] = {}
    for scenario in chosen:
        path = _expected_path(golden_dir, scenario)
        if not path.exists():
            out[scenario.name] = [
                f"no expected report at {path} (run repro-verify --update-golden)"
            ]
            continue
        expected = json.loads(path.read_text())
        actual = _run_any(scenario, verify=verify)
        out[scenario.name] = _diff(expected, actual)
    return out


def update_golden(
    names: Optional[List[str]] = None, golden_dir: Optional[Path] = None
) -> Dict[str, Path]:
    """(Re)write the expected reports; returns ``{name: path written}``."""
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    golden_dir.mkdir(parents=True, exist_ok=True)
    chosen = (
        [scenario_by_name(n) for n in names]
        if names
        else [*SCENARIOS, *FLEET_SCENARIOS]
    )
    written: Dict[str, Path] = {}
    for scenario in chosen:
        actual = _run_any(scenario, verify=True)
        path = _expected_path(golden_dir, scenario)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        written[scenario.name] = path
    return written
