"""Test harness for hostile-market regimes (``repro.testkit``).

The paper's four-nines claim rests on the scheduler behaving correctly
under *hostile* conditions — revocation storms, correlated price spikes,
slow checkpoints — yet calm traces dominate ordinary tests. This package
makes the hostile regimes first-class:

* :mod:`repro.testkit.faults` — :class:`FaultPlan`: a seeded or scripted
  fault schedule (revocation storms, correlated multi-market spikes,
  delayed/failed checkpoint writes, stretched disk copies and startups,
  worker-process crashes) that rides a
  :class:`~repro.core.simulation.SimulationConfig` /
  :class:`~repro.runtime.spec.RunSpec` across process boundaries;
* :mod:`repro.testkit.oracles` — post-run conservation checks (billing,
  availability, metrics/results agreement, lease hygiene) runnable after
  any simulation via ``run_simulation(..., verify=True)`` or the
  ``repro-verify`` CLI;
* :mod:`repro.testkit.conformance` — the policy conformance suite:
  :func:`conformance_check` audits any registered hosting strategy
  against the registry contract (``pytest -m conformance``);
* :mod:`repro.testkit.builders` — deterministic trace/catalog builders
  shared by the unit tests and downstream users;
* :mod:`repro.testkit.strategies` — the shared Hypothesis generator set
  (requires the ``test`` extra);
* :mod:`repro.testkit.golden` — the committed golden-scenario corpus and
  its comparison/refresh machinery (``repro-verify --all-golden`` /
  ``--update-golden``);
* :mod:`repro.testkit.cli` — the ``repro-verify`` command.

See ``docs/TESTING.md`` for the full testing guide.
"""

from repro.testkit.builders import (
    make_catalog,
    make_constant_trace,
    make_step_trace,
    single_market_catalog,
)
from repro.testkit.conformance import GRID_REGIONS, GRID_SIZES, conformance_check
from repro.testkit.faults import (
    FaultPlan,
    FaultStats,
    PriceSpike,
    kill_orchestrator_after_n_runs,
)
from repro.testkit.golden import (
    FLEET_SCENARIOS,
    SCENARIOS,
    GoldenFleetScenario,
    GoldenScenario,
    check_scenarios,
    default_golden_dir,
    run_fleet_scenario,
    run_scenario,
    scenario_by_name,
    update_golden,
)
from repro.testkit.oracles import (
    OracleCheck,
    OracleReport,
    check_jobs_determinism,
    check_rerun_determinism,
    check_spare_pool,
    run_verified,
    verify_fleet,
    verify_stack,
)

__all__ = [
    "FaultPlan",
    "FaultStats",
    "PriceSpike",
    "kill_orchestrator_after_n_runs",
    "conformance_check",
    "GRID_REGIONS",
    "GRID_SIZES",
    "OracleCheck",
    "OracleReport",
    "verify_stack",
    "run_verified",
    "check_rerun_determinism",
    "check_jobs_determinism",
    "check_spare_pool",
    "verify_fleet",
    "GoldenScenario",
    "GoldenFleetScenario",
    "SCENARIOS",
    "FLEET_SCENARIOS",
    "scenario_by_name",
    "run_scenario",
    "run_fleet_scenario",
    "check_scenarios",
    "update_golden",
    "default_golden_dir",
    "make_step_trace",
    "make_constant_trace",
    "make_catalog",
    "single_market_catalog",
]
