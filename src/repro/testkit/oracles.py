"""Post-run invariant oracles: does a finished simulation's book balance?

Each oracle audits one conservation law of the completed
:class:`~repro.core.simulation.SimStack` against the distilled
:class:`~repro.core.results.SimulationResult`:

* **billing** — every ledger entry is a start-of-hour charge at the spot
  price then in force (Section 2.1's "billed ... based on the spot price at
  the beginning of each hour"), revoked partial hours are free, on-demand
  hours bill at the fixed on-demand price, and the per-kind totals add up
  to the reported cost;
* **availability** — the observation window sits inside the horizon,
  blackout intervals are disjoint and inside the window, and uptime plus
  blackout time exactly covers the window;
* **placement** — the placement timeline is ordered, non-overlapping, and
  yields the reported spot-time fraction;
* **metrics** — the :mod:`repro.obs` registry agrees with the results
  report (migration counters, spend, summary gauges);
* **determinism** — equal seeds and equal ``jobs`` produce byte-identical
  reports (:func:`check_rerun_determinism`, :func:`check_jobs_determinism`).

Run them via ``run_simulation(config, verify=True)``, :func:`run_verified`,
or the ``repro-verify`` CLI.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import InvariantViolation
from repro.traces.catalog import MarketKey
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "OracleCheck",
    "OracleReport",
    "verify_stack",
    "run_verified",
    "check_rerun_determinism",
    "check_jobs_determinism",
    "check_spare_pool",
    "verify_fleet",
]

#: Tolerance for comparing recomputed sums of floats (order-of-addition
#: differences only; any real accounting bug is far larger).
REL_TOL = 1e-9
ABS_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


@dataclass(frozen=True)
class OracleCheck:
    """One oracle's verdict."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.passed else "FAIL"
        tail = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{tail}"


@dataclass
class OracleReport:
    """All oracle verdicts for one run."""

    checks: List[OracleCheck] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(OracleCheck(name=name, passed=passed, detail=detail))

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> List[OracleCheck]:
        return [c for c in self.checks if not c.passed]

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.InvariantViolation` if any check failed."""
        if not self.passed:
            lines = [str(c) for c in self.failures]
            raise InvariantViolation(
                f"{len(lines)} invariant check(s) failed:\n" + "\n".join(lines),
                failures=lines,
            )

    def summary(self) -> str:
        """Multi-line human rendering of every check."""
        return "\n".join(str(c) for c in self.checks)


def _market_key(market: str) -> MarketKey:
    region, _, size = market.partition("/")
    return MarketKey(region=region, size=size)


# --------------------------------------------------------------------- oracles
def _check_billing(report: OracleReport, stack, result) -> None:
    ledger = stack.scheduler.ledger
    catalog = stack.catalog
    bad: List[str] = []
    for e in ledger.entries:
        key = _market_key(e.market)
        if e.kind == "spot":
            expected_rate = float(catalog.trace(key).price_at(e.time))
            if not _close(e.rate, expected_rate):
                bad.append(
                    f"spot hour at t={e.time:.0f} in {e.market} billed at rate "
                    f"{e.rate:.6f}, trace says {expected_rate:.6f}"
                )
            if e.note == "revoked-free":
                if e.amount != 0.0:
                    bad.append(f"revoked partial hour at t={e.time:.0f} charged {e.amount:.6f}")
            elif not _close(e.amount, e.rate):
                bad.append(
                    f"spot hour at t={e.time:.0f} charged {e.amount:.6f} != rate {e.rate:.6f}"
                )
        elif e.kind == "on_demand":
            expected_rate = catalog.on_demand_price(key)
            if not _close(e.rate, expected_rate):
                bad.append(
                    f"on-demand hour at t={e.time:.0f} in {e.market} billed at "
                    f"{e.rate:.6f}, price table says {expected_rate:.6f}"
                )
            if not _close(e.amount, e.rate):
                bad.append(f"on-demand hour at t={e.time:.0f} not charged in full")
        else:
            bad.append(f"unknown lease kind {e.kind!r} at t={e.time:.0f}")
    report.add(
        "billing.start-of-hour-rates",
        not bad,
        "; ".join(bad[:3]) + (f" (+{len(bad) - 3} more)" if len(bad) > 3 else ""),
    )

    entry_total = sum(e.amount for e in ledger.entries)
    report.add(
        "billing.ledger-total",
        _close(entry_total, result.total_cost),
        f"entries sum to {entry_total:.6f}, report says {result.total_cost:.6f}",
    )
    report.add(
        "billing.kind-split",
        _close(ledger.total_by_kind("spot"), result.spot_cost)
        and _close(ledger.total_by_kind("on_demand"), result.on_demand_cost)
        and _close(result.spot_cost + result.on_demand_cost, result.total_cost),
        f"spot {result.spot_cost:.6f} + on-demand {result.on_demand_cost:.6f} "
        f"vs total {result.total_cost:.6f}",
    )


def _check_availability(report: OracleReport, stack, result) -> None:
    avail = stack.scheduler.availability
    horizon = stack.scheduler.horizon
    if avail.window_start is None or avail.window_end is None:
        report.add("availability.window", False, "observation window never opened/closed")
        return
    report.add(
        "availability.window",
        0.0 <= avail.window_start <= avail.window_end <= horizon + ABS_TOL,
        f"window [{avail.window_start:.0f}, {avail.window_end:.0f}) "
        f"vs horizon {horizon:.0f}",
    )
    ivs = sorted(avail.downtime, key=lambda iv: iv.start)
    disjoint = all(a.end <= b.start + ABS_TOL for a, b in zip(ivs, ivs[1:]))
    in_window = all(
        avail.window_start - ABS_TOL <= iv.start and iv.end <= avail.window_end + ABS_TOL
        for iv in ivs
    )
    report.add(
        "availability.blackouts-disjoint",
        disjoint and in_window,
        f"{len(ivs)} blackout intervals",
    )
    # Conservation: uptime + blackout time covers the window exactly.
    downtime = avail.total_downtime()
    uptime = avail.window_duration - downtime
    report.add(
        "availability.conservation",
        uptime >= -ABS_TOL and _close(uptime + downtime, avail.window_duration),
        f"uptime {uptime:.1f}s + downtime {downtime:.1f}s "
        f"vs window {avail.window_duration:.1f}s",
    )
    report.add(
        "availability.report-agreement",
        _close(result.downtime_s, downtime)
        and _close(result.unavailability_percent, avail.unavailability_percent())
        and _close(sum(result.downtime_by_cause.values()), downtime),
        f"report downtime {result.downtime_s:.1f}s vs tracker {downtime:.1f}s",
    )


def _check_placement(report: OracleReport, stack, result) -> None:
    scheduler = stack.scheduler
    log = scheduler.placement_log
    ordered = all(r.end > r.start for r in log) and all(
        a.end <= b.start + ABS_TOL for a, b in zip(log, log[1:])
    )
    in_horizon = all(
        -ABS_TOL <= r.start and r.end <= scheduler.horizon + ABS_TOL for r in log
    )
    report.add(
        "placement.timeline",
        ordered and in_horizon,
        f"{len(log)} tenures over {scheduler.horizon / SECONDS_PER_HOUR:.0f}h",
    )
    report.add(
        "placement.spot-fraction",
        _close(result.spot_time_fraction, scheduler.spot_time_fraction()),
        f"report {result.spot_time_fraction:.6f} "
        f"vs log {scheduler.spot_time_fraction():.6f}",
    )


def _check_metrics(report: OracleReport, stack, result) -> None:
    m = stack.scheduler.metrics

    def counter(name: str) -> float:
        c = m.counters.get(name)
        return c.value if c is not None else 0.0

    pairs = [
        ("migrations.forced", counter("migrations.forced"), result.forced_migrations),
        (
            "migrations.planned(+spot-switch)",
            counter("migrations.planned") + counter("migrations.spot-switch"),
            result.planned_migrations,
        ),
        ("migrations.reverse", counter("migrations.reverse"), result.reverse_migrations),
        ("migrations.outage", counter("migrations.outage"), result.outages),
    ]
    bad = [f"{n}: metric {v:g} vs report {r}" for n, v, r in pairs if not _close(v, r)]
    report.add("metrics.migration-counters", not bad, "; ".join(bad))

    spend = sum(c.value for name, c in m.counters.items() if name.startswith("spend_usd."))
    report.add(
        "metrics.spend-total",
        _close(spend, result.total_cost),
        f"spend_usd.* sums to {spend:.6f}, report says {result.total_cost:.6f}",
    )

    gauges = [
        ("total_cost_usd", result.total_cost),
        ("normalized_cost_percent", result.normalized_cost_percent),
        ("unavailability_percent", result.unavailability_percent),
        ("spot_time_fraction", result.spot_time_fraction),
    ]
    bad = []
    for name, expected in gauges:
        g = m.gauges.get(name)
        if g is None or not _close(g.value, expected):
            bad.append(f"{name}: gauge {'missing' if g is None else g.value} vs {expected}")
    report.add("metrics.summary-gauges", not bad, "; ".join(bad))


def verify_stack(stack, result) -> OracleReport:
    """Audit a completed stack against its distilled result.

    Parameters
    ----------
    stack:
        A :class:`~repro.core.simulation.SimStack` whose scheduler has run
        to the horizon.
    result:
        The matching :class:`~repro.core.results.SimulationResult` (from
        :func:`~repro.core.simulation.summarize_stack`).
    """
    report = OracleReport()
    _check_billing(report, stack, result)
    _check_availability(report, stack, result)
    _check_placement(report, stack, result)
    _check_metrics(report, stack, result)
    return report


# ------------------------------------------------------------------ entry points
def run_verified(config, sink=None):
    """Run one simulation and audit it; returns ``(ObservedRun, OracleReport)``.

    Unlike ``run_simulation(config, verify=True)`` this never raises on a
    red check — callers inspect (or render) the report themselves.
    """
    from repro.core.simulation import ObservedRun, build_stack, summarize_stack
    from repro.obs.sinks import NULL_SINK

    stack = build_stack(config, sink=sink if sink is not None else NULL_SINK)
    stack.scheduler.run()
    result = summarize_stack(stack)
    report = verify_stack(stack, result)
    observed = ObservedRun(
        result=result,
        fired_events=stack.engine.fired_count,
        metrics=stack.scheduler.metrics,
    )
    return observed, report


def check_rerun_determinism(config, report: Optional[OracleReport] = None) -> OracleReport:
    """Run ``config`` twice and check the reports are byte-identical.

    Results are compared field-for-field (dataclass equality — exact float
    equality, not tolerance) and the metric registries via their dict
    snapshots.
    """
    from repro.core.simulation import run_simulation_observed

    report = report if report is not None else OracleReport()
    first = run_simulation_observed(config)
    second = run_simulation_observed(config)
    report.add(
        "determinism.rerun-results",
        first.result == second.result,
        f"seed {config.seed}",
    )
    report.add(
        "determinism.rerun-metrics",
        first.metrics.to_dict() == second.metrics.to_dict(),
        f"seed {config.seed}",
    )
    return report


def check_jobs_determinism(
    config,
    seeds: Sequence[int],
    jobs: int = 4,
    report: Optional[OracleReport] = None,
) -> OracleReport:
    """Check ``run_many`` is byte-identical serial vs ``jobs`` workers."""
    from repro.core.simulation import run_many

    report = report if report is not None else OracleReport()
    serial = run_many(config, list(seeds), jobs=1)
    parallel = run_many(config, list(seeds), jobs=jobs)
    mismatches = [
        f"seed {s}" for s, a, b in zip(seeds, serial, parallel) if a != b
    ]
    report.add(
        "determinism.jobs",
        not mismatches,
        f"jobs=1 vs jobs={jobs} over {len(list(seeds))} seeds"
        + (f"; mismatched: {', '.join(mismatches)}" if mismatches else ""),
    )
    return report


# ------------------------------------------------------------- fleet oracles
def check_spare_pool(outcome, quotas, default_quota: int = 1) -> OracleReport:
    """Conservation invariants of one shared spare pool's event log.

    Independently replays the :class:`~repro.fleet.spares.SparePoolOutcome`
    event log and checks: spares in use never exceed the pool capacity, no
    service ever holds more than its quota (no double-grant past the cap),
    claim accounting balances (hits + misses == claims, per-service stats
    sum to the totals), and the recorded peak matches the replay.
    """
    report = OracleReport()
    capacity = outcome.capacity
    window = outcome.handover_window_s
    held: dict = {}
    releases: List[Tuple[float, str]] = []
    in_use = 0
    peak = 0
    bad_capacity: List[str] = []
    bad_quota: List[str] = []
    bad_log: List[str] = []
    last_t = None
    for ev in outcome.events:
        if last_t is not None and ev.t < last_t:
            bad_log.append(f"event log goes backwards at t={ev.t:.0f}")
        last_t = ev.t
        while releases and releases[0][0] <= ev.t:
            _, done = heapq.heappop(releases)
            held[done] -= 1
            in_use -= 1
        if ev.granted:
            quota = quotas.get(ev.service, default_quota)
            if held.get(ev.service, 0) >= quota:
                bad_quota.append(
                    f"{ev.service} granted a {held.get(ev.service, 0) + 1}th "
                    f"spare at t={ev.t:.0f} over quota {quota}"
                )
            if in_use >= capacity:
                bad_capacity.append(
                    f"grant at t={ev.t:.0f} with {in_use}/{capacity} already in use"
                )
            held[ev.service] = held.get(ev.service, 0) + 1
            in_use += 1
            peak = max(peak, in_use)
            heapq.heappush(releases, (ev.t + window, ev.service))
        if ev.in_use_after != in_use:
            bad_log.append(
                f"t={ev.t:.0f}: log says {ev.in_use_after} in use, replay says {in_use}"
            )
    report.add(
        "spare-pool.capacity", not bad_capacity, "; ".join(bad_capacity[:3])
    )
    report.add("spare-pool.quota", not bad_quota, "; ".join(bad_quota[:3]))
    report.add("spare-pool.log-consistent", not bad_log, "; ".join(bad_log[:3]))
    hits = sum(1 for ev in outcome.events if ev.granted)
    misses = len(outcome.events) - hits
    report.add(
        "spare-pool.accounting",
        hits == outcome.hits
        and misses == outcome.misses
        and outcome.hits + outcome.misses == outcome.claims
        and outcome.quota_misses + outcome.exhausted_misses == outcome.misses
        and peak == outcome.peak_in_use,
        f"hits {outcome.hits} + misses {outcome.misses} vs claims "
        f"{outcome.claims}; peak {outcome.peak_in_use} vs replay {peak}",
    )
    per_claims = sum(s.claims for s in outcome.per_service.values())
    per_hits = sum(s.hits for s in outcome.per_service.values())
    report.add(
        "spare-pool.per-service-split",
        per_claims == outcome.claims and per_hits == outcome.hits,
        f"per-service claims {per_claims}/{outcome.claims}, "
        f"hits {per_hits}/{outcome.hits}",
    )
    return report


def verify_fleet(spec, fleet_report, results=None) -> OracleReport:
    """Audit a :class:`~repro.fleet.report.FleetReport` against its spec.

    Checks report-internal accounting (service rows sum to the fleet
    totals, cohort counts add up, target bookkeeping matches) and — when
    the per-service ``results`` are provided — replays the shared spare
    pool from the raw forced-migration instants and runs
    :func:`check_spare_pool` on its event log, then cross-checks the
    report's spare-pool numbers against the independent replay.
    """
    report = OracleReport()
    services = fleet_report.services
    report.add(
        "fleet.cohort-counts",
        fleet_report.n_services == len(spec.services) == len(services)
        and fleet_report.n_initial + fleet_report.n_arrived == fleet_report.n_services,
        f"{fleet_report.n_initial} initial + {fleet_report.n_arrived} arrived "
        f"vs {fleet_report.n_services} services",
    )
    cost_sum = sum(s.cost for s in services)
    base_sum = sum(s.baseline_cost for s in services)
    report.add(
        "fleet.cost-rollup",
        _close(cost_sum, fleet_report.total_cost)
        and _close(base_sum, fleet_report.baseline_cost),
        f"service costs sum to {cost_sum:.6f} vs total {fleet_report.total_cost:.6f}",
    )
    norm = 100.0 * fleet_report.total_cost / fleet_report.baseline_cost \
        if fleet_report.baseline_cost else 0.0
    report.add(
        "fleet.normalized-cost",
        _close(norm, fleet_report.normalized_cost_percent)
        and _close(
            fleet_report.savings_percent, 100.0 - fleet_report.normalized_cost_percent
        ),
        f"recomputed {norm:.6f}% vs {fleet_report.normalized_cost_percent:.6f}%",
    )
    met = sum(1 for s in services if s.target_met)
    report.add(
        "fleet.targets",
        met == fleet_report.services_meeting_target,
        f"{met} rows marked met vs {fleet_report.services_meeting_target}",
    )
    claims = sum(s.spare_claims for s in services)
    hits = sum(s.spare_hits for s in services)
    sp = fleet_report.spare_pool
    report.add(
        "fleet.spare-rollup",
        claims == sp.claims and hits == sp.hits,
        f"service rows: {claims} claims / {hits} hits vs pool "
        f"{sp.claims} / {sp.hits}",
    )
    if results is not None:
        from repro.fleet.spares import SharedSparePool

        claims_seq: List[Tuple[float, str]] = []
        for svc, res in zip(spec.services, results):
            a, d = spec.active_window(svc)
            claims_seq.extend(
                (t, svc.name) for t in res.forced_times if a <= t < d
            )
        pool = SharedSparePool(
            capacity=spec.spare_capacity,
            handover_window_s=spec.handover_window_s,
            quotas={svc.name: svc.spare_quota for svc in spec.services},
        )
        outcome = pool.replay(claims_seq)
        quotas = {svc.name: svc.spare_quota for svc in spec.services}
        for check in check_spare_pool(outcome, quotas).checks:
            report.checks.append(check)
        report.add(
            "fleet.spare-replay",
            outcome.claims == sp.claims
            and outcome.hits == sp.hits
            and outcome.misses == sp.misses
            and outcome.peak_in_use == sp.peak_in_use,
            f"replay {outcome.claims}/{outcome.hits}/{outcome.misses} "
            f"vs report {sp.claims}/{sp.hits}/{sp.misses}",
        )
    return report
