"""Shared Hypothesis generators for property-based tests.

One generator set, drawn from by ``tests/props/`` and available to
downstream users (requires the ``test`` extra for ``hypothesis``):

* :func:`traces` / :func:`trace_and_time` / :func:`trace_and_lease` —
  well-formed random step functions and query points/lease windows;
* :func:`memories` / :func:`links` — VM memory profiles and region links
  for the migration-mechanism laws;
* :func:`calibrations` — random-but-valid market calibrations;
* :func:`worlds` — a full random market world plus a policy selection;
* :func:`fault_plans` — random :class:`~repro.testkit.faults.FaultPlan`
  instances for chaos-mode testing;
* :func:`portfolio_weights` / :func:`tracking_bands` /
  :func:`risk_estimates` — inputs for the related-work policy families
  (:mod:`repro.core.policies`): simplex weight vectors, index-tracking
  band configurations, and LP risk/cost problem instances.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from hypothesis import strategies as st

from repro.testkit.faults import FaultPlan, PriceSpike
from repro.traces.calibration import calibration_for
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "traces",
    "trace_and_time",
    "trace_and_lease",
    "memories",
    "links",
    "calibrations",
    "worlds",
    "fault_plans",
    "portfolio_weights",
    "tracking_bands",
    "risk_estimates",
]


@st.composite
def traces(draw, max_points: int = 40) -> PriceTrace:
    """A well-formed random :class:`~repro.traces.trace.PriceTrace`."""
    n = draw(st.integers(min_value=1, max_value=max_points))
    gaps = draw(
        st.lists(st.floats(min_value=0.5, max_value=5000.0), min_size=n, max_size=n)
    )
    times = np.cumsum(np.asarray(gaps)) - gaps[0]
    prices = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    tail = draw(st.floats(min_value=0.5, max_value=5000.0))
    return PriceTrace(times, np.asarray(prices), float(times[-1] + tail))


@st.composite
def trace_and_time(draw):
    """A random trace plus an in-range query time."""
    t = draw(traces())
    at = draw(st.floats(min_value=0.0, max_value=1.0))
    return t, t.start + at * (t.horizon - t.start) * 0.999


@st.composite
def trace_and_lease(draw):
    """A random trace plus a lease window ``(trace, start, end)`` inside it."""
    n = draw(st.integers(min_value=1, max_value=20))
    gaps = draw(st.lists(st.floats(min_value=60.0, max_value=20000.0), min_size=n, max_size=n))
    times = np.cumsum(np.asarray(gaps)) - gaps[0]
    prices = draw(
        st.lists(st.floats(min_value=0.001, max_value=2.0), min_size=n, max_size=n)
    )
    horizon = float(times[-1] + 200000.0)
    trace = PriceTrace(times, np.asarray(prices), horizon)
    start = draw(st.floats(min_value=0.0, max_value=horizon / 3))
    dur = draw(st.floats(min_value=0.0, max_value=horizon / 3))
    return trace, start, start + dur


@st.composite
def memories(draw):
    """A random VM memory profile."""
    from repro.vm.memory import MemoryProfile

    size = draw(st.floats(min_value=0.5, max_value=16.0))
    dirty = draw(st.floats(min_value=0.0, max_value=250.0))
    ws = draw(st.floats(min_value=0.02, max_value=0.5))
    return MemoryProfile(size_gib=size, dirty_rate_mbps=dirty, working_set_frac=ws)


@st.composite
def links(draw):
    """A random intra-region network link."""
    from repro.cloud.regions import RegionLink

    bw = draw(st.floats(min_value=280.0, max_value=1000.0))
    return RegionLink(intra=True, memory_bandwidth_mbps=bw, disk_bandwidth_mbps=bw, rtt_ms=1.0)


@st.composite
def calibrations(draw):
    """A random-but-valid market calibration for the trace generator."""
    calm = draw(st.floats(min_value=0.06, max_value=0.44))
    sigma = draw(st.floats(min_value=0.0, max_value=0.5))
    blip_rate = draw(st.floats(min_value=0.0, max_value=0.05))
    spike_rate = draw(st.floats(min_value=0.0, max_value=0.05))
    sharp_rate = draw(st.floats(min_value=0.0, max_value=0.01))
    change_rate = draw(st.floats(min_value=0.5, max_value=12.0))
    cal = calibration_for(
        "us-east-1a",
        "small",
        calm_base_frac=calm,
        calm_sigma=sigma,
        calm_change_rate_per_hour=change_rate,
    )
    return replace(
        cal,
        blips=replace(cal.blips, rate_per_hour=blip_rate),
        spikes=replace(cal.spikes, rate_per_hour=spike_rate),
        sharp_spikes=replace(cal.sharp_spikes, rate_per_hour=sharp_rate),
    )


@st.composite
def worlds(draw):
    """A random market world plus a random policy selection:
    ``(seed, calibration, policy)`` with policy in
    ``{'proactive', 'reactive', 'pure-spot', 'multi'}``."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    calm = draw(st.floats(min_value=0.08, max_value=0.44))
    spike_rate = draw(st.floats(min_value=0.0, max_value=0.05))
    sharp_rate = draw(st.floats(min_value=0.0, max_value=0.01))
    cal = calibration_for(
        "us-east-1a",
        "small",
        calm_base_frac=calm,
    )
    cal = replace(
        cal,
        spikes=replace(cal.spikes, rate_per_hour=spike_rate),
        sharp_spikes=replace(cal.sharp_spikes, rate_per_hour=sharp_rate),
    )
    policy = draw(st.sampled_from(["proactive", "reactive", "pure-spot", "multi"]))
    return seed, cal, policy


@st.composite
def fault_plans(draw, horizon_s: float = 7 * 24 * SECONDS_PER_HOUR) -> FaultPlan:
    """A random :class:`~repro.testkit.faults.FaultPlan` over ``horizon_s``.

    Covers the whole schema: 0-4 scripted spikes (sometimes correlated,
    factors straddling the 4x bid cap), checkpoint delays/failures, and
    stretched disk-copy/startup times. Crash schedules are left out —
    they belong to executor tests, not scheduler chaos.
    """
    n_spikes = draw(st.integers(min_value=0, max_value=4))
    spikes = []
    for _ in range(n_spikes):
        start = draw(st.floats(min_value=0.0, max_value=horizon_s * 0.9))
        dur = draw(st.floats(min_value=120.0, max_value=6 * SECONDS_PER_HOUR))
        factor = draw(st.floats(min_value=1.5, max_value=8.0))
        correlated = draw(st.booleans())
        spikes.append(
            PriceSpike(
                start_s=start,
                duration_s=dur,
                factor=factor,
                markets=None if correlated else ("us-east-1a/small",),
            )
        )
    delay = draw(st.sampled_from([0.0, 5.0, 30.0, 120.0]))
    fail_rate = draw(st.sampled_from([0.0, 0.1, 0.5]))
    disk = draw(st.floats(min_value=0.5, max_value=4.0))
    startup = draw(st.floats(min_value=0.5, max_value=3.0))
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        spikes=tuple(spikes),
        checkpoint_delay_s=delay,
        checkpoint_failure_rate=fail_rate,
        disk_copy_factor=disk,
        startup_factor=startup,
    )


@st.composite
def portfolio_weights(draw, max_markets: int = 6) -> np.ndarray:
    """A random portfolio weight vector on the probability simplex —
    the feasible-point shape :func:`~repro.core.policies.solve_portfolio_lp`
    optimizes over (``w >= 0``, ``sum(w) == 1``)."""
    n = draw(st.integers(min_value=1, max_value=max_markets))
    raw = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    return raw / raw.sum()


@st.composite
def tracking_bands(draw):
    """An index-tracking configuration ``(band, n_markets)`` spanning the
    tight-to-loose range :class:`~repro.core.policies.IndexTrackingStrategy`
    accepts."""
    band = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    n_markets = draw(st.integers(min_value=1, max_value=4))
    return band, n_markets


@st.composite
def risk_estimates(draw, max_markets: int = 6):
    """An LP problem instance ``(costs, risks, risk_cap)`` for
    :func:`~repro.core.policies.solve_portfolio_lp`: per-market fleet
    rates, trailing-window revocation-risk estimates in ``[0, 1]``, and a
    risk cap. Infeasible instances (every market over the cap) are drawn
    on purpose — the solver must return ``None`` for them."""
    n = draw(st.integers(min_value=1, max_value=max_markets))
    costs = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=1e-3, max_value=5.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    risks = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    risk_cap = draw(st.floats(min_value=0.0, max_value=0.6, allow_nan=False))
    return costs, risks, risk_cap
