"""The vectorized batch engine: decision epochs as array scans.

The per-event engine walks every hour-aligned boundary check one
``Timeout`` at a time — for a month-long run that is ~700 generator
resumptions, heap operations and trace bisects per run, almost all of
which conclude "stay put". :class:`VectorScheduler` removes exactly that
no-action machinery and nothing else:

* at the start of each placement tenure it generates the sequence of
  boundary-check instants the event engine would visit (the same
  ``anchor + k·3600 − lead`` floats, from the same
  ``_next_boundary_check`` arithmetic) in geometrically growing windows;
* it evaluates the boundary decision predicate over each window at once
  as NumPy comparisons against the shared :class:`~repro.traces.compiled.
  CompiledTrace` segment tables (a ``markets × epochs`` price matrix for
  the reverse-migration scan), stopping at the first window that acts —
  so a tenure that migrates after a day never touches the month of
  boundaries behind it;
* it parks once — via :class:`~repro.simulator.process.SleepUntil` — at
  the first instant where something *acts* (planned/reverse migration,
  revocation warning, or the horizon), and from there runs the inherited
  scalar :class:`~repro.core.scheduler.CloudScheduler` code unchanged.

Bit-equivalence with the event engine is by construction, not tolerance:

* every acquisition, migration, billing record and RNG draw executes the
  same scalar code at the same instant in the same order;
* the decision predicates are the array twins the bidding policy itself
  provides (``planned_migration_mask`` / ``reverse_migration_mask``) —
  the identical float comparisons, elementwise;
* the event engine's arrival times are chained floats
  (``a_i = a_{i-1} + max(0, t_i - a_{i-1})``), which equal the stop
  instants exactly whenever the addition round-trips. The scan *verifies*
  that vectorized and, at the first hop where rounding would diverge,
  parks on the chained value instead and re-evaluates there — precisely
  what the event engine would have done.

A scan predicate is allowed to over-approximate (flag a boundary where
the scalar decision then says "stay"): landing on a no-action boundary
is a side-effect-free no-op, after which the phase re-enters and the
scan resumes. It must never under-approximate — every rule here either
reproduces the scalar comparison exactly or errs towards stopping.

Eligibility is strict (see :func:`policies_vectorizable`): the strategy
and bidding policy must both declare ``vectorizable`` — static bids and
pure predicates, plus either a zero rate adjustment or the closed-form
dwell-model hooks (``spot_rate_cap``, ``vector_od_adjustment_floor``,
``_vector_dwell``, ``_vector_exact_od_ranking``) that keep the scans
sound over-approximations — and the run must not be narrating to a
trace sink (the event engine emits a ``BillingTick`` per visited
boundary; skipping boundaries would change the narration). Ineligible
configurations transparently degrade: the scheduler simply behaves as a
:class:`CloudScheduler` and reports ``vectorized = False``.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.cloud.provider import LeaseKind
from repro.core.scheduler import CloudScheduler
from repro.simulator.process import SleepUntil
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "ENGINE_KINDS",
    "VectorScheduler",
    "policies_vectorizable",
    "spec_vector_eligible",
]

#: Valid values of the ``--engine`` selector.
ENGINE_KINDS = ("auto", "event", "vector", "fused")


def policies_vectorizable(strategy: object, bidding: object) -> bool:
    """May runs under this (strategy, bidding) pair use the vector engine?

    Both must opt in: the strategy via its ``vectorizable`` capability
    flag (greedy ranking, no opportunistic switching) and the bidding
    policy via ``vectorizable`` plus the two array-mask twins of its
    scalar predicates. Missing attributes mean "no".
    """
    return bool(
        getattr(strategy, "vectorizable", False)
        and getattr(bidding, "vectorizable", False)
        and callable(getattr(bidding, "planned_migration_mask", None))
        and callable(getattr(bidding, "reverse_migration_mask", None))
    )


def spec_vector_eligible(spec: object) -> bool:
    """Is a :class:`~repro.runtime.spec.RunSpec` runnable on the vector
    engine at all (capability check only — the executor layers its own
    routing policy for faults/capture/ledger on top)?

    Building the strategy to inspect its flag is safe: factories build a
    fresh instance per call and strategies are cheap by contract.
    """
    factory = getattr(spec, "strategy", None)
    bidding = getattr(spec, "bidding", None)
    if factory is None or bidding is None:
        return False
    try:
        strategy = factory()
    except Exception:
        return False
    return policies_vectorizable(strategy, bidding)


class VectorScheduler(CloudScheduler):
    """Drop-in :class:`CloudScheduler` that batch-scans no-action epochs.

    Overrides only the two *phase* generators. Every decision that acts —
    and therefore everything observable: leases, billing, RNG draws,
    migrations, availability — runs the inherited scalar code at the
    instants the scans select, which is how results stay bit-identical.

    When the configuration is not vectorizable (``vectorized`` is False)
    both phases delegate to the parent and the run is an ordinary
    per-event run.
    """

    def __init__(self, *args, fused=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.vectorized = (
            not self.sink.enabled
            and policies_vectorizable(self.strategy, self.bidding)
        )
        #: Boundary-check instants evaluated as array scans (telemetry:
        #: how much per-event machinery the run batched away).
        self.vector_checks = 0
        #: Optional :class:`~repro.runtime.fused.FusedScanContext` shared
        #: with the other runs of a fusion group: boundary-window price
        #: rows are computed once per (trace, anchor, lead) and served to
        #: every aligned run. ``None`` keeps all lookups run-local.
        self._fused = fused if self.vectorized else None
        self._scan_span = None
        #: Per-market envelope of every price the run compared against its
        #: reverse-migration threshold: ``key -> (lo, hi)`` where ``lo`` is
        #: the largest compared price the predicate accepted and ``hi`` the
        #: smallest it rejected. Any threshold in ``[lo, hi)`` makes the
        #: identical accept/reject call at every comparison this run
        #: performed — the batch executor uses that to clone runs that
        #: differ only in a reverse threshold the trajectory never
        #: discriminated (:mod:`repro.runtime.fused`).
        self.reverse_band: dict = {}

    # ------------------------------------------------- reverse-band recording
    def _reverse_wanted(self, key, price: float, od_single: float) -> bool:
        """Scalar reverse predicate, recorded (overrides the base hook)."""
        wanted = self.bidding.wants_reverse_migration(price, od_single)
        lo, hi = self.reverse_band.get(key, (-math.inf, math.inf))
        if wanted:
            if price > lo:
                lo = price
        elif price < hi:
            hi = price
        self.reverse_band[key] = (lo, hi)
        return wanted

    def _note_reverse(self, key, prices: np.ndarray, mask: np.ndarray) -> None:
        """Fold one window of mask comparisons into the market's band."""
        lo, hi = self.reverse_band.get(key, (-math.inf, math.inf))
        if mask.any():
            accepted = float(prices[mask].max())
            if accepted > lo:
                lo = accepted
        if not mask.all():
            rejected = float(prices[~mask].min())
            if rejected < hi:
                hi = rejected
        self.reverse_band[key] = (lo, hi)

    def _scan_prices(self, trace, checks: np.ndarray) -> np.ndarray:
        """Prices at a scan window's boundary checks.

        Delegates to the fusion group's shared boundary table when one is
        attached and a scan is in flight; otherwise (or when the table
        declines) a run-local compiled-trace lookup. Either path returns
        the bit-identical elementwise ``trace.price_at(checks)`` floats.
        """
        if self._fused is not None and self._scan_span is not None:
            anchor, lead, lo = self._scan_span
            prices = self._fused.prices(trace, anchor, lead, lo, checks)
            if prices is not None:
                return prices
        return np.asarray(trace.price_at(checks), dtype=np.float64)

    # ------------------------------------------------------------ scan plumbing
    #: Initial scan window (boundary checks per mask evaluation); doubles
    #: per window up to the cap. Most tenures act within the first window,
    #: so the common phase touches ~64 epochs instead of the whole tenure.
    #: 64 measured best on the 64-run sweep: below it, multi-window setup
    #: overhead dominates; above it, wasted mask work on short tenures.
    _SCAN_WINDOW = 64
    _SCAN_WINDOW_MAX = 512

    def _first_acting_arrival(self, now: float, lead: float, t_hi: float, act_mask) -> float:
        """Chained-arrival instant of the first acting boundary check in
        ``(now, t_hi)`` — or of ``t_hi`` itself when none acts.

        Boundary checks are the bit-identical floats the event engine
        visits: the first is the scalar :meth:`_next_boundary_check`
        answer, the rest advance ``k`` by one per epoch (the recurrence
        the event engine's ceil/guard arithmetic resolves to — its 1e-9
        guard absorbs the sub-nanosecond float error, so consecutive
        checks always step ``k`` by exactly one). They are generated in
        geometrically growing windows; ``act_mask(window)`` marks acting
        instants, and the scan stops at the first.

        The return value replays the event engine's timeout chain: it
        arrives at stop ``s_i`` at ``a_i = a_{i-1} + max(0, s_i −
        a_{i-1})`` — equal to ``s_i`` whenever the float addition
        round-trips (always, once times are within Sterbenz range of each
        other). If some hop would diverge by an ulp, the scan lands on
        the chained value of the first such hop — the phase re-evaluates
        there and continues, exactly as the event engine would have.
        """
        arrive = now
        if t_hi > now:
            assert self.placement is not None
            anchor = self.placement.ready_at
            first = self._next_boundary_check(now, lead)
            if first < t_hi:
                k0 = round((first + lead - anchor) / SECONDS_PER_HOUR)
                # Overshoot the k range by one and trim against t_hi:
                # cheaper than reproducing the ceil-edge analysis, and
                # exact either way.
                k1 = math.ceil((t_hi + lead - anchor) / SECONDS_PER_HOUR) + 1
                k_end = max(k1, k0) + 1
                lo, width = k0, self._SCAN_WINDOW
                while lo < k_end:
                    hi = min(lo + width, k_end)
                    ks = np.arange(lo, hi, dtype=np.float64)
                    checks = anchor + ks * SECONDS_PER_HOUR - lead
                    # checks is strictly increasing: binary-search the
                    # t_hi cutoff and slice (a view).
                    cut = int(checks.searchsorted(t_hi, side="left"))
                    if cut:
                        window = checks[:cut]
                        self.vector_checks += cut
                        self._scan_span = (anchor, lead, lo)
                        try:
                            act = act_mask(window)
                        finally:
                            self._scan_span = None
                        first_stop = float(window[0])
                        if (
                            2.0 * arrive >= first_stop
                            and first_stop >= 2.0 * SECONDS_PER_HOUR
                        ):
                            # Every hop is provably exact (Sterbenz): the
                            # departure point of each hop is within a
                            # factor of two of its stop, so the delta
                            # subtracts exactly and the addition lands on
                            # the stop bit-for-bit. Arrivals == stops; no
                            # walk needed.
                            idx = int(act.argmax())
                            if act[idx]:
                                return float(window[idx])
                            arrive = float(window[-1])
                        else:
                            # Early-sim small times: walk the chain hop by
                            # hop, exactly as the event engine arrives.
                            for stop, acts in zip(window.tolist(), act.tolist()):
                                delta = stop - arrive
                                arrive = arrive + (delta if delta > 0.0 else 0.0)
                                if acts or arrive != stop:
                                    return arrive
                    if cut < hi - lo:
                        break
                    lo, width = hi, min(width * 2, self._SCAN_WINDOW_MAX)
        delta = t_hi - arrive
        return arrive + (delta if delta > 0.0 else 0.0)

    # ----------------------------------------------------------- spot tenure
    def _spot_phase(self) -> Generator:
        if not self.vectorized:
            yield from super()._spot_phase()
            return
        placement = self.placement
        assert placement is not None and placement.kind is LeaseKind.SPOT
        now = self.engine.now
        bid = placement.leases[0].bid
        assert bid is not None
        market = self._market(placement.key)
        lead = self._planned_lead(placement.key)

        warning = market.revocation_warning_time(bid, now)
        t_hi = min(warning if warning is not None else float("inf"), self.horizon)
        if warning is not None:
            # A check within the event engine's 1e-9 epsilon below the
            # warning takes the forced path there regardless of the
            # boundary decision — never skip past it.
            wcut = warning - 1e-9

            def act_mask(checks: np.ndarray) -> np.ndarray:
                act = self._spot_act_mask(market, checks)
                act |= checks >= wcut
                return act

        else:

            def act_mask(checks: np.ndarray) -> np.ndarray:
                return self._spot_act_mask(market, checks)

        yield SleepUntil(self._first_acting_arrival(now, lead, t_hi, act_mask))

        # From here down: the event engine's epilogue, verbatim.
        now = self.engine.now
        if now >= self.horizon:
            return
        if warning is not None and now >= warning - 1e-9:
            yield from self._forced_migration(warning)
        else:
            yield from self._boundary_decision_on_spot(now)

    def _spot_act_mask(self, market, checks: np.ndarray) -> np.ndarray:
        """Which boundary checks act while on spot.

        With an on-demand fallback a planned trigger always migrates
        (exact). Without one (pure spot) it only acts when some sibling
        spot market is grantable at that instant. Opportunistic-switching
        strategies with a closed-form dwell model (``_vector_dwell``)
        additionally act where the dwell gate is open and some in-cap
        sibling beats the current rate by the hysteresis factor — the
        same comparisons ``decide_spot_boundary`` applies, elementwise.
        """
        prices = self._scan_prices(market.trace, checks)
        planned = np.asarray(
            self.bidding.planned_migration_mask(prices, market.on_demand_price),
            dtype=bool,
        )
        strategy = self.strategy
        if strategy.allows_on_demand or not planned.any():
            act = planned
        else:
            placement = self.placement
            assert placement is not None
            alt_any = np.zeros(checks.shape, dtype=bool)
            for key in strategy.candidate_markets(self.provider):
                if key == placement.key:
                    continue
                m = self._market(key)
                b = self.bidding.bid_price(m, self.engine.now)
                m.validate_bid(b)
                alt_any |= self._scan_prices(m.trace, checks) <= b
            act = planned & alt_any
        if strategy.opportunistic_switching:
            act = act | self._opportunistic_mask(prices, checks)
        return act

    def _opportunistic_mask(self, prices: np.ndarray, checks: np.ndarray) -> np.ndarray:
        """Exact array twin of the opportunistic spot-switch decision.

        ``_last_spot_switch`` is constant within a tenure, so the dwell
        gate is one subtract-and-compare per check; candidates are ranked
        by raw fleet rate filtered by grantability and the strategy's
        ``spot_rate_cap`` (the ``_vector_dwell`` contract), and the
        minimum rate is order-independent, so the hysteresis comparison
        uses the scalar ranking's exact winning value.
        """
        strategy = self.strategy
        placement = self.placement
        assert placement is not None
        dwell_ok = (checks - self._last_spot_switch) >= strategy.min_dwell_s
        if not dwell_ok.any():
            return dwell_ok
        cap_fn = getattr(strategy, "spot_rate_cap", None)
        cap = cap_fn(self.provider) if cap_fn is not None else None
        best = np.full(checks.shape, np.inf)
        for key in strategy.candidate_markets(self.provider):
            if key == placement.key:
                continue
            m = self._market(key)
            b = self.bidding.bid_price(m, self.engine.now)
            m.validate_bid(b)
            p = self._scan_prices(m.trace, checks)
            rate = strategy.servers_needed(key) * p
            ok = p <= b
            if cap is not None:
                ok &= rate <= cap
            np.minimum(best, np.where(ok, rate, np.inf), out=best)
        cur = strategy.servers_needed(placement.key) * prices
        return (
            dwell_ok
            & np.isfinite(best)
            & (best < cur * strategy.improvement_factor)
        )

    # ------------------------------------------------------ on-demand tenure
    def _on_demand_phase(self) -> Generator:
        if not self.vectorized:
            yield from super()._on_demand_phase()
            return
        placement = self.placement
        assert placement is not None and placement.kind is LeaseKind.ON_DEMAND
        now = self.engine.now
        lead = self._planned_lead(placement.key)
        yield SleepUntil(
            self._first_acting_arrival(now, lead, self.horizon, self._od_act_builder())
        )

        now = self.engine.now
        if now >= self.horizon:
            return
        decision = self.decide_on_demand_boundary(now)
        if decision.migrates:
            assert decision.target_key is not None
            yield from self._voluntary_migration(
                now, decision.target_key, decision.n_servers,
                LeaseKind.SPOT, "reverse",
            )

    def _od_act_builder(self):
        """Build this tenure's reverse-migration mask function.

        Reproduces :meth:`~repro.core.scheduler.CloudScheduler.
        decide_on_demand_boundary` as array comparisons. The per-tenure
        constants — candidate markets, their (static) bids, unit counts
        and rates — are hoisted here, outside the per-window scan; the
        returned function evaluates one window of boundary checks.
        """
        placement = self.placement
        assert placement is not None
        strategy = self.strategy
        candidates = (
            strategy.candidate_markets(self.provider) if strategy.allows_spot else []
        )
        if not candidates:
            return lambda checks: np.zeros(checks.shape, dtype=bool)
        od_rate = strategy.on_demand_rate(self.provider, placement.key)
        reverse_mask = self.bidding.reverse_migration_mask
        cap_fn = getattr(strategy, "spot_rate_cap", None)
        cap = cap_fn(self.provider) if cap_fn is not None else None

        if not getattr(strategy, "_vector_exact_od_ranking", True):
            # The strategy re-ranks candidates per epoch (LP portfolio,
            # windowed stability adjustment): no exact array twin exists.
            # Sound over-approximation instead — act wherever *some*
            # candidate is grantable, beats on-demand even with the
            # strategy's adjustment floored in, and passes the reverse
            # predicate. The scalar decision re-ranks exactly at every
            # boundary the scan stops on; extra stops are no-ops.
            floor_fn = getattr(strategy, "vector_od_adjustment_floor", None)
            rows = []
            for key in candidates:
                m = self._market(key)
                b = self.bidding.bid_price(m, self.engine.now)
                m.validate_bid(b)
                rows.append(
                    (m, b, strategy.servers_needed(key),
                     self.provider.on_demand_price(key), key)
                )

            def act_any(checks: np.ndarray) -> np.ndarray:
                act = np.zeros(checks.shape, dtype=bool)
                for m, b, units, od_single, key in rows:
                    p = self._scan_prices(m.trace, checks)
                    term = p <= b
                    rate = units * p
                    if cap is not None:
                        term &= rate <= cap
                    floor = (
                        floor_fn(self.provider, key, checks)
                        if floor_fn is not None
                        else None
                    )
                    if floor is None:
                        term &= rate < od_rate
                    else:
                        term &= rate + floor < od_rate
                    rmask = np.asarray(reverse_mask(p, od_single), dtype=bool)
                    self._note_reverse(key, p, rmask)
                    term &= rmask
                    act |= term
                return act

            return act_any

        if len(candidates) == 1:
            # Single-candidate fast path: no ranking matrix needed. The
            # float ops are the scalar loop's, elementwise: ``n * price``
            # for the fleet rate and the policy's own reverse mask.
            # Composed with in-place ``&=`` to avoid intermediate arrays.
            key = candidates[0]
            m = self._market(key)
            b = self.bidding.bid_price(m, self.engine.now)
            m.validate_bid(b)
            units = strategy.servers_needed(key)
            od_price = self.provider.on_demand_price(key)
            trace = m.trace

            def act_single(checks: np.ndarray) -> np.ndarray:
                # _scan_prices returns a float64 ndarray (our own trace
                # code) — no asarray round-trip needed.
                p = self._scan_prices(trace, checks)
                act = p <= b
                rate = units * p
                act &= rate < od_rate
                if cap is not None:
                    act &= rate <= cap
                rmask = np.asarray(reverse_mask(p, od_price), dtype=bool)
                self._note_reverse(key, p, rmask)
                act &= rmask
                return act

            return act_single

        markets = []
        bids = np.empty(len(candidates), dtype=np.float64)
        units = np.empty(len(candidates), dtype=np.float64)
        singles = np.empty(len(candidates), dtype=np.float64)
        for i, key in enumerate(candidates):
            m = self._market(key)
            b = self.bidding.bid_price(m, self.engine.now)
            m.validate_bid(b)
            markets.append(m)
            bids[i] = b
            units[i] = strategy.servers_needed(key)
            singles[i] = self.provider.on_demand_price(key)

        def act_many(checks: np.ndarray) -> np.ndarray:
            # A ``markets × epochs`` price matrix, grantability against
            # the bids (and the strategy's rate cap, when one exists),
            # fleet rates with ineligible cells masked to
            # +inf, a first-occurrence argmin (the scalar loop's
            # strict-``<`` keeps the first minimum too), and the policy's
            # reverse mask on the winning market's price.
            n = checks.shape[0]
            prices = np.empty((len(markets), n), dtype=np.float64)
            for i, m in enumerate(markets):
                prices[i] = self._scan_prices(m.trace, checks)
            grantable = prices <= bids[:, None]
            rates = units[:, None] * prices
            if cap is not None:
                grantable &= rates <= cap
            ranked = np.where(grantable, rates, np.inf)
            best = np.argmin(ranked, axis=0)
            cols = np.arange(n)
            best_rate = ranked[best, cols]
            any_grant = grantable[best, cols]
            win_prices = prices[best, cols]
            reverse = np.asarray(reverse_mask(win_prices, singles[best]), dtype=bool)
            for w in np.unique(best):
                rows = best == w
                self._note_reverse(candidates[w], win_prices[rows], reverse[rows])
            return any_grant & (best_rate < od_rate) & reverse

        return act_many
