"""Zero-copy catalog fan-out over ``multiprocessing.shared_memory``.

A parallel batch used to ship each trace catalog to the pool by pickling
— every worker paid a full serialize/deserialize round-trip per catalog
group, and runs sharing a catalog had to be *grouped onto one worker* to
amortise it, capping parallelism at the number of distinct seeds. The
shared-memory plan removes both costs:

* the parent publishes each unique catalog's trace arrays **once per
  batch** into one :class:`~multiprocessing.shared_memory.SharedMemory`
  block (:func:`publish_catalog`);
* workers receive a tiny pickleable :class:`CatalogPlan` (names, offsets,
  on-demand prices) and rehydrate :class:`~repro.traces.trace.PriceTrace`
  views directly over the mapped block (:func:`attach_catalog`) —
  ``np.ascontiguousarray`` on an aligned contiguous float64 view is a
  no-op, so no trace bytes are copied anywhere;
* with transfer cost gone, the executor fans out **per run** instead of
  per catalog group, so same-sample policy comparisons parallelise past
  the seed count.

Platforms without usable shared memory (or ``REPRO_SHM=0`` in the
environment) simply report :func:`shm_available` false and the executor
falls back to the grouped pickling path — results are byte-identical
either way; only the fan-out shape changes.

Lifecycle: the parent keeps the segment handles until every future has
completed, then closes and unlinks them (POSIX keeps the mapping valid
for workers that already attached). Workers cache attachments in a small
LRU keyed by segment name so repeated runs against one catalog attach
once; evicted segments are closed as soon as no trace views remain.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.trace import PriceTrace

__all__ = [
    "CatalogPlan",
    "shm_available",
    "publish_catalog",
    "attach_catalog",
    "release_segment",
    "SHM_ENV_VAR",
]

#: Set to ``0`` to disable the shared-memory plan (grouped pickling is used).
SHM_ENV_VAR = "REPRO_SHM"

#: Attached segments kept per worker; older ones are closed when evicted.
ATTACH_CACHE_MAX = 8

_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Can this platform publish shared-memory catalog plans?

    Probes once per process by creating a throwaway segment; the
    ``REPRO_SHM=0`` environment override is honoured on every call.
    """
    if os.environ.get(SHM_ENV_VAR, "") == "0":
        return False
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


@dataclass(frozen=True)
class CatalogPlan:
    """A pickleable recipe for rehydrating one published catalog.

    Everything a worker needs to rebuild the catalog as views over the
    named segment: market identities, per-market ``(offset, n)`` element
    layout (``times`` at ``[off, off+n)``, ``prices`` at
    ``[off+n, off+2n)``), on-demand prices and the horizon.
    """

    shm_name: str
    horizon: float
    markets: Tuple[Tuple[str, str], ...]  #: (region, size) per market
    layout: Tuple[Tuple[int, int], ...]  #: (offset, n) per market
    od_prices: Tuple[float, ...]
    total_floats: int
    #: Segment-directory catalogs (ingested archives) ship the directory
    #: path instead of trace bytes: every worker mmaps the same files, so
    #: nothing is copied anywhere and no shared-memory block is needed.
    segment_dir: Optional[str] = None


def publish_catalog(catalog: TraceCatalog):
    """Copy a catalog's trace arrays into a fresh shared-memory segment.

    Returns ``(plan, segment)``; the caller owns the segment handle and
    must keep it alive until every consumer has attached, then
    :func:`release_segment` it.

    Catalogs loaded from an ingested segment directory (``catalog.source``
    set) never copy: the plan carries only the directory path and the
    returned segment handle is ``None`` — workers mmap the files directly.
    """
    source = getattr(catalog, "source", None)
    if source is not None:
        plan = CatalogPlan(
            shm_name="",
            horizon=catalog.horizon,
            markets=tuple((k.region, k.size) for k in catalog.markets()),
            layout=(),
            od_prices=(),
            total_floats=0,
            segment_dir=str(source),
        )
        return plan, None

    from multiprocessing import shared_memory

    markets = catalog.markets()
    lengths = [len(catalog.trace(k)) for k in markets]
    total = 2 * sum(lengths)
    segment = shared_memory.SharedMemory(create=True, size=max(total * 8, 8))
    buf = np.ndarray((total,), dtype=np.float64, buffer=segment.buf)
    layout = []
    off = 0
    for key, n in zip(markets, lengths):
        trace = catalog.trace(key)
        buf[off : off + n] = trace.times
        buf[off + n : off + 2 * n] = trace.prices
        layout.append((off, n))
        off += 2 * n
    del buf  # the parent's view must not outlive the publish call
    plan = CatalogPlan(
        shm_name=segment.name,
        horizon=catalog.horizon,
        markets=tuple((k.region, k.size) for k in markets),
        layout=tuple(layout),
        od_prices=tuple(catalog.on_demand_price(k) for k in markets),
        total_floats=total,
    )
    return plan, segment


def _attach_untracked(name: str):
    """Attach to a named segment without resource-tracker registration.

    Python < 3.13 has no ``track=False``: attaching registers the name
    with the process's resource tracker, which either double-books the
    parent's registration (fork pools share one tracker — later
    unregisters raise KeyErrors) or, under spawn, unlinks the parent's
    segment when the worker exits. Suppressing registration for the one
    attach call sidesteps both; ownership stays with the publisher.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


#: Per-process attachment cache: segment name -> (catalog, segment).
_ATTACHED: "OrderedDict[str, Tuple[TraceCatalog, object]]" = OrderedDict()


def attach_catalog(plan: CatalogPlan) -> TraceCatalog:
    """Rehydrate a published catalog as zero-copy views over its segment.

    Cached per segment name, so a worker executing many runs against one
    catalog attaches (and validates) once. Raises on any failure — the
    executor's worker path falls back to building the catalog locally.
    """
    cache_key = plan.shm_name if plan.segment_dir is None else f"dir:{plan.segment_dir}"
    cached = _ATTACHED.get(cache_key)
    if cached is not None:
        _ATTACHED.move_to_end(cache_key)
        return cached[0]
    if plan.segment_dir is not None:
        # Segment-directory plan: mmap the ingested files directly; there
        # is no shared-memory block to attach or evict.
        from repro.traces.ingest import load_segment_catalog

        catalog = load_segment_catalog(plan.segment_dir)
        _ATTACHED[cache_key] = (catalog, None)
        return catalog
    segment = _attach_untracked(plan.shm_name)
    buf = np.ndarray((plan.total_floats,), dtype=np.float64, buffer=segment.buf)
    traces: Dict[MarketKey, PriceTrace] = {}
    od: Dict[MarketKey, float] = {}
    for (region, size), (off, n), price in zip(plan.markets, plan.layout, plan.od_prices):
        key = MarketKey(region=region, size=size)
        traces[key] = PriceTrace(
            buf[off : off + n],
            buf[off + n : off + 2 * n],
            plan.horizon,
            market=size,
            region=region,
        )
        od[key] = price
    catalog = TraceCatalog(traces, od, plan.horizon)
    _ATTACHED[plan.shm_name] = (catalog, segment)
    while len(_ATTACHED) > ATTACH_CACHE_MAX:
        _, (old_catalog, old_segment) = _ATTACHED.popitem(last=False)
        del old_catalog
        if old_segment is None:  # segment-directory entry: nothing to close
            continue
        try:
            old_segment.close()  # type: ignore[attr-defined]
        except BufferError:  # pragma: no cover - a view is still alive
            pass
    return catalog


def release_segment(segment) -> None:
    """Close and unlink a published segment (parent side, end of batch).

    ``None`` (a segment-directory plan's handle) is a no-op.
    """
    if segment is None:
        return
    try:
        segment.close()
    except BufferError:  # pragma: no cover - defensive
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def attached_count() -> int:
    """Number of segments currently attached in this process (test aid)."""
    return len(_ATTACHED)
