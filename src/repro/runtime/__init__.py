"""Declarative batch execution: specs in, results out, as fast as the box allows.

Every paper table/figure is a fan-out of the same scheduler over many
(seed × policy × mechanism × market) variants. This package turns one such
variant into a pickleable :class:`RunSpec`, a set of them into a
:class:`BatchSpec`, and executes batches through :func:`run_batch` — serially
by default (byte-for-byte reproducible ordering), or across worker processes
with ``jobs > 1``. A per-process :class:`TraceCatalogCache` guarantees that
N policies evaluated on one seed pay for a single trace-catalog build, the
shared-memory plan (:mod:`repro.runtime.shm`) publishes each catalog's trace
arrays once per batch so pool workers rehydrate zero-copy views instead of
unpickling catalogs, and
:class:`RunTelemetry` / :class:`BatchTelemetry` records surface wall-clock,
events-processed, and cache-hit counters in experiment reports.
"""

from repro.runtime.cache import CatalogKey, TraceCatalogCache, shared_catalog_cache
from repro.runtime.executor import BatchResult, run_batch
from repro.runtime.shm import (
    CatalogPlan,
    attach_catalog,
    publish_catalog,
    release_segment,
    shm_available,
)
from repro.runtime.spec import (
    BatchSpec,
    RunSpec,
    StrategySpec,
    register_strategy_kind,
    strategy_kinds,
)
from repro.runtime.telemetry import (
    BatchTelemetry,
    RunTelemetry,
    TelemetryCollector,
    collect_telemetry,
)

__all__ = [
    "BatchResult",
    "BatchSpec",
    "BatchTelemetry",
    "CatalogKey",
    "CatalogPlan",
    "RunSpec",
    "RunTelemetry",
    "StrategySpec",
    "TelemetryCollector",
    "TraceCatalogCache",
    "attach_catalog",
    "collect_telemetry",
    "publish_catalog",
    "register_strategy_kind",
    "release_segment",
    "run_batch",
    "shared_catalog_cache",
    "shm_available",
    "strategy_kinds",
]
