"""Declarative batch execution: specs in, results out, as fast as the box allows.

Every paper table/figure is a fan-out of the same scheduler over many
(seed × policy × mechanism × market) variants. This package turns one such
variant into a pickleable :class:`RunSpec`, a set of them into a
:class:`BatchSpec`, and executes batches through :func:`run_batch` — serially
by default (byte-for-byte reproducible ordering), or across worker processes
with ``jobs > 1``. A per-process :class:`TraceCatalogCache` guarantees that
N policies evaluated on one seed pay for a single trace-catalog build, and
:class:`RunTelemetry` / :class:`BatchTelemetry` records surface wall-clock,
events-processed, and cache-hit counters in experiment reports.
"""

from repro.runtime.cache import CatalogKey, TraceCatalogCache, shared_catalog_cache
from repro.runtime.executor import BatchResult, run_batch
from repro.runtime.spec import (
    BatchSpec,
    RunSpec,
    StrategySpec,
    register_strategy_kind,
    strategy_kinds,
)
from repro.runtime.telemetry import (
    BatchTelemetry,
    RunTelemetry,
    TelemetryCollector,
    collect_telemetry,
)

__all__ = [
    "BatchResult",
    "BatchSpec",
    "BatchTelemetry",
    "CatalogKey",
    "RunSpec",
    "RunTelemetry",
    "StrategySpec",
    "TelemetryCollector",
    "TraceCatalogCache",
    "collect_telemetry",
    "register_strategy_kind",
    "run_batch",
    "shared_catalog_cache",
    "strategy_kinds",
]
