"""Declarative batch execution: specs in, results out, as fast as the box allows.

Every paper table/figure is a fan-out of the same scheduler over many
(seed × policy × mechanism × market) variants. This package turns one such
variant into a pickleable :class:`RunSpec`, a set of them into a
:class:`BatchSpec`, and executes batches through :func:`run_batch` — serially
by default (byte-for-byte reproducible ordering), or across worker processes
with ``jobs > 1``. A per-process :class:`TraceCatalogCache` guarantees that
N policies evaluated on one seed pay for a single trace-catalog build, the
shared-memory plan (:mod:`repro.runtime.shm`) publishes each catalog's trace
arrays once per batch so pool workers rehydrate zero-copy views instead of
unpickling catalogs, and
:class:`RunTelemetry` / :class:`BatchTelemetry` records surface wall-clock,
events-processed, and cache-hit counters in experiment reports.
"""

from repro.runtime.cache import CatalogKey, TraceCatalogCache, shared_catalog_cache
from repro.runtime.executor import BatchResult, run_batch
from repro.runtime.vector import ENGINE_KINDS
from repro.runtime.ledger import (
    LEDGER_VERSION,
    LedgerRecord,
    LedgerState,
    RunLedger,
    resolve_ledger_path,
)
from repro.runtime.shm import (
    CatalogPlan,
    attach_catalog,
    publish_catalog,
    release_segment,
    shm_available,
)
from repro.runtime.spec import (
    BatchSpec,
    RunSpec,
    StrategySpec,
    batch_fingerprint,
    register_strategy_kind,
    spec_fingerprint,
    strategy_kinds,
)
from repro.runtime.telemetry import (
    BatchTelemetry,
    RunTelemetry,
    TelemetryCollector,
    collect_telemetry,
)

__all__ = [
    "BatchResult",
    "BatchSpec",
    "BatchTelemetry",
    "ENGINE_KINDS",
    "CatalogKey",
    "CatalogPlan",
    "LEDGER_VERSION",
    "LedgerRecord",
    "LedgerState",
    "RunLedger",
    "RunSpec",
    "RunTelemetry",
    "StrategySpec",
    "TelemetryCollector",
    "TraceCatalogCache",
    "attach_catalog",
    "batch_fingerprint",
    "collect_telemetry",
    "publish_catalog",
    "register_strategy_kind",
    "release_segment",
    "resolve_ledger_path",
    "run_batch",
    "shared_catalog_cache",
    "shm_available",
    "spec_fingerprint",
    "strategy_kinds",
]
