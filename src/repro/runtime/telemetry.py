"""Run instrumentation: what each run cost, where the time went.

Every executed run yields a :class:`RunTelemetry`; every batch a
:class:`BatchTelemetry`. Callers who want cross-batch totals (the
experiment runner's footer line) open a :func:`collect_telemetry` scope —
each ``run_batch`` reports into every active collector.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RunTelemetry",
    "BatchTelemetry",
    "TelemetryCollector",
    "collect_telemetry",
]


@dataclass(frozen=True)
class RunTelemetry:
    """Instrumentation of one scheduler run."""

    label: str
    seed: int
    wall_s: float  #: run wall-clock, including any catalog build
    events_processed: int  #: discrete events fired by the engine
    catalog_wall_s: float = 0.0  #: catalog build time (0 on a cache hit)
    catalog_cache_hit: bool = False
    #: How the run's catalog was resolved: ``"build"`` (generated here),
    #: ``"cache"`` (process-cache hit), ``"shm"`` (zero-copy views over a
    #: shared-memory plan published by the batch parent), or ``""`` when
    #: the run carried no resolvable catalog key.
    catalog_source: str = ""
    worker_pid: int = 0  #: executing process (parent pid when serial)
    #: Execution attempts consumed (1 = first try succeeded; > 1 means the
    #: executor's retry loop absorbed worker crashes).
    attempts: int = 1
    #: The run's metric-registry snapshot (:meth:`MetricsRegistry.to_dict`).
    metrics: Optional[Dict[str, Any]] = None
    #: Captured trace events as dicts, present only when the run's spec set
    #: ``capture_trace`` — dicts (not event objects) so they cross the
    #: process-pool boundary as plain picklable data.
    trace_events: Optional[Tuple[Dict[str, Any], ...]] = None
    #: True when this run was replayed from a :mod:`repro.runtime.ledger`
    #: journal instead of executed; every other field then reports the
    #: *original* execution (wall clock, worker pid, attempts).
    replayed: bool = False
    #: Which engine actually executed the run: ``"event"`` (per-event
    #: loop) or ``"vector"`` (batched boundary scans). Reports the engine
    #: that *ran*, not the one requested — a forced-vector run whose
    #: configuration was not vectorizable reports ``"event"``.
    engine_kind: str = "event"
    #: Boundary-check instants the vector engine evaluated as array scans
    #: (its batch width for this run); 0 on the event engine.
    vector_checks: int = 0
    #: True when this run's result was cloned from a dynamics-identical
    #: sibling in the same batch instead of executed; the execution fields
    #: (wall clock, events, attempts) then report the *representative*
    #: run, exactly as ledger replays report the original execution.
    deduped: bool = False
    #: True when the run executed on the vector engine with a shared
    #: cross-run scan context (:mod:`repro.runtime.fused`) attached —
    #: boundary-window price rows were served from the fusion group's
    #: cache instead of recomputed per run. Always False for dedupe
    #: twins: a run is cloned or fused, never both.
    fused: bool = False


@dataclass(frozen=True)
class BatchTelemetry:
    """Instrumentation of one executed batch."""

    runs: int
    wall_s: float
    catalog_builds: int
    catalog_cache_hits: int
    events_processed: int
    jobs: int = 1  #: worker processes requested
    parallel_runs: int = 0  #: runs executed in pool workers
    shm_catalogs: int = 0  #: catalogs published as shared-memory plans
    resumed: bool = False  #: batch was resumed from a run ledger
    replayed_runs: int = 0  #: runs replayed from the ledger, not executed
    engine: str = "auto"  #: the requested ``--engine`` selector
    vector_runs: int = 0  #: runs the vector engine actually batched
    #: total boundary-check instants the vector engine scanned as arrays
    vector_checks: int = 0
    deduped_runs: int = 0  #: runs cloned from dynamics-identical siblings
    #: fusion groups that shared one cross-run scan context
    fused_groups: int = 0
    #: runs executed inside a fusion group (disjoint from deduped_runs)
    fused_runs: int = 0

    def summary(self) -> str:
        """One-line human summary (the runner's footer ingredient)."""
        base = (
            f"{self.runs} runs, {self.catalog_builds} catalog builds, "
            f"{self.catalog_cache_hits} cache hits, jobs={self.jobs}"
        )
        if self.shm_catalogs:
            base += f", {self.shm_catalogs} shm catalogs"
        if self.replayed_runs:
            base += f", {self.replayed_runs} replayed"
        if self.vector_runs:
            base += f", {self.vector_runs} vector ({self.vector_checks} checks)"
        if self.deduped_runs:
            base += f", {self.deduped_runs} deduped"
        if self.fused_runs:
            base += f", {self.fused_runs} fused in {self.fused_groups} groups"
        return base


class TelemetryCollector:
    """Accumulates batch telemetry across several ``run_batch`` calls."""

    def __init__(self) -> None:
        self.batches: List[BatchTelemetry] = []

    def add(self, batch: BatchTelemetry) -> None:
        self.batches.append(batch)

    # ------------------------------------------------------------ aggregates
    @property
    def runs(self) -> int:
        return sum(b.runs for b in self.batches)

    @property
    def catalog_builds(self) -> int:
        return sum(b.catalog_builds for b in self.batches)

    @property
    def cache_hits(self) -> int:
        return sum(b.catalog_cache_hits for b in self.batches)

    @property
    def events_processed(self) -> int:
        return sum(b.events_processed for b in self.batches)

    @property
    def jobs(self) -> int:
        return max((b.jobs for b in self.batches), default=1)

    @property
    def shm_catalogs(self) -> int:
        return sum(b.shm_catalogs for b in self.batches)

    @property
    def replayed_runs(self) -> int:
        return sum(b.replayed_runs for b in self.batches)

    @property
    def vector_runs(self) -> int:
        return sum(b.vector_runs for b in self.batches)

    @property
    def deduped_runs(self) -> int:
        return sum(b.deduped_runs for b in self.batches)

    @property
    def fused_groups(self) -> int:
        return sum(b.fused_groups for b in self.batches)

    @property
    def fused_runs(self) -> int:
        return sum(b.fused_runs for b in self.batches)

    @property
    def wall_s(self) -> float:
        return sum(b.wall_s for b in self.batches)

    def summary(self) -> str:
        base = (
            f"{self.runs} runs, {self.catalog_builds} catalog builds, "
            f"{self.cache_hits} cache hits, jobs={self.jobs}"
        )
        if self.shm_catalogs:
            base += f", {self.shm_catalogs} shm catalogs"
        if self.replayed_runs:
            base += f", {self.replayed_runs} replayed"
        if self.vector_runs:
            base += f", {self.vector_runs} vector"
        if self.deduped_runs:
            base += f", {self.deduped_runs} deduped"
        if self.fused_runs:
            base += f", {self.fused_runs} fused in {self.fused_groups} groups"
        return base


_ACTIVE: contextvars.ContextVar[Tuple[TelemetryCollector, ...]] = contextvars.ContextVar(
    "repro_runtime_telemetry_collectors", default=()
)


@contextlib.contextmanager
def collect_telemetry() -> Iterator[TelemetryCollector]:
    """Collect telemetry from every batch executed inside the scope."""
    collector = TelemetryCollector()
    token = _ACTIVE.set(_ACTIVE.get() + (collector,))
    try:
        yield collector
    finally:
        _ACTIVE.reset(token)


def notify_batch(batch: BatchTelemetry) -> None:
    """Report one finished batch to every active collector (executor hook)."""
    for collector in _ACTIVE.get():
        collector.add(batch)
