"""Cross-run fusion: one boundary-scan array program for a whole group.

The vector engine (:mod:`repro.runtime.vector`) made a *single* run scan
its no-action boundary epochs as NumPy comparisons — but a policy sweep
runs hundreds of variants over the same compiled catalog, and each of
them re-derived the identical ``anchor + k·3600 − lead`` check instants
and re-bisected the identical compiled-trace price tables. This module
removes that cross-run redundancy without touching a single decision:

* :func:`fused_dedupe_key` extends PR 6's dynamics-signature dedupe with
  *capability-aware projection*: a strategy that can never leave spot
  never evaluates the bidding policy's reverse threshold, and an
  on-demand-only strategy never evaluates bids at all — so the projected
  key drops exactly the parameters the scheduler provably never reads,
  collapsing whole axes of a sweep into one executed representative
  (byte-identical by construction: the dropped parameters have no code
  path that could observe them).
* :class:`FusedScanContext` is a fusion group's shared boundary-window
  cache. Runs whose decision histories have not yet diverged request the
  same ``(trace, anchor, lead)`` rows; the context materialises each row
  once — the same elementwise check/price floats every run would have
  computed — and serves zero-copy slices. Divergent runs (different
  tenure anchors after their first differing decision) simply miss the
  cache and fall back to run-local lookups: per-run divergence handling
  *is* the miss path, so results cannot depend on group composition.
* :func:`plan_fusion` turns a pending batch into twin/representative
  assignments plus per-catalog shared contexts for the executor's serial
  path.

Everything here is an optimisation layer over the per-run engines;
``--engine fused`` therefore inherits the vector engine's bit-identity
contract, enforced by the golden corpus and the fused==vector==event
hypothesis property in ``tests/runtime/test_fused_engine.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.units import SECONDS_PER_HOUR

__all__ = [
    "FusedScanContext",
    "FusionPlan",
    "band_matches",
    "fused_dedupe_key",
    "plan_fusion",
    "rank_projection",
]

#: Total floats a context may pin across its boundary tables (checks and
#: prices each); past the budget, requests simply miss and the run
#: computes locally. 2M entries ≈ 32 MiB of row cache per fusion group.
_TABLE_BUDGET = 2_000_000


class _BoundaryTable:
    """Grown row cache for one ``(trace, anchor, lead)`` tenure timeline.

    Rows grow upward only: aligned runs re-request the same geometrically
    growing windows starting at the tenure's first boundary index, so a
    request below the table's origin (or past the context budget) is
    served by the caller's run-local fallback instead.
    """

    __slots__ = ("trace", "anchor", "lead", "k0", "checks", "prices", "n")

    def __init__(self, trace, anchor: float, lead: float, k0: int) -> None:
        self.trace = trace
        self.anchor = anchor
        self.lead = lead
        self.k0 = k0
        self.n = 0
        self.checks: Optional[np.ndarray] = None
        self.prices: Optional[np.ndarray] = None

    def grow_to(self, n: int) -> int:
        """Extend the cached rows to cover ``n`` entries; returns the
        number of new entries materialised."""
        if n <= self.n:
            return 0
        # First materialisation is sized exactly to the request: on a
        # heterogeneous group most admitted tables serve only a couple of
        # small windows, so a minimum-row floor would overshoot for rows
        # nobody reads. Doubling kicks in once the table proves reuse.
        new_n = n if self.n == 0 else max(n, 2 * self.n, 64)
        ks = np.arange(self.k0 + self.n, self.k0 + new_n, dtype=np.float64)
        checks = self.anchor + ks * SECONDS_PER_HOUR - self.lead
        prices = np.asarray(self.trace.price_at(checks), dtype=np.float64)
        if self.n:
            checks = np.concatenate([self.checks, checks])
            prices = np.concatenate([self.prices, prices])
        checks.setflags(write=False)
        prices.setflags(write=False)
        added = new_n - self.n
        self.checks, self.prices, self.n = checks, prices, new_n
        return added


class FusedScanContext:
    """Shared boundary-window price rows for one fusion group.

    One instance is attached (via the ``fused`` scheduler kwarg) to every
    executed run of a group sharing a trace catalog. Tables are keyed by
    trace *identity* — a faulted provider that wraps or replaces a trace
    can never alias a clean run's rows — plus the tenure's
    ``(anchor, lead)`` timeline, which aligned runs share exactly until
    their first divergent decision.
    """

    __slots__ = ("_tables", "_seen", "_budget", "hits", "misses")

    def __init__(self, budget: int = _TABLE_BUDGET) -> None:
        self._tables: Dict[tuple, _BoundaryTable] = {}
        #: Two-touch admission: timeline keys requested exactly once. Most
        #: keys on a heterogeneous group are never requested twice (runs
        #: diverge, anchors don't align), so materialising a table on
        #: first touch would pay doubling-overshoot lookups for rows
        #: nobody re-reads. The first request goes run-local; a table is
        #: built only when the same timeline comes back.
        self._seen: set = set()
        self._budget = budget
        self.hits = 0
        self.misses = 0

    def prices(
        self, trace, anchor: float, lead: float, k_lo: int, checks: np.ndarray
    ) -> Optional[np.ndarray]:
        """Price row for boundary indices ``[k_lo, k_lo + len(checks))``.

        Returns a read-only view bit-identical to
        ``trace.price_at(checks)``, or ``None`` when the request cannot
        be served from the cache (table origin above ``k_lo``, budget
        exhausted) — the caller then computes run-locally.
        """
        key = (id(trace), anchor, lead)
        table = self._tables.get(key)
        if table is None:
            if self._budget <= 0 or key not in self._seen:
                self._seen.add(key)
                self.misses += 1
                return None
            table = self._tables[key] = _BoundaryTable(trace, anchor, lead, k_lo)
        elif k_lo < table.k0:
            self.misses += 1
            return None
        n = checks.shape[0]
        off = k_lo - table.k0
        end = off + n
        if end > table.n:
            if self._budget <= 0:
                self.misses += 1
                return None
            self._budget -= table.grow_to(end)
        # Belt and braces: the row must be the caller's exact floats.
        if table.checks[off] != checks[0]:  # pragma: no cover
            self.misses += 1
            return None
        self.hits += 1
        return table.prices[off:end]


@dataclass
class FusionPlan:
    """The serial executor's fusion assignment for one pending batch."""

    #: Twin run index -> its executed representative's index. Twins are
    #: expanded from the representative's finished result — strictly
    #: *after* fused evaluation, never double-counted as fused runs.
    twin_of: Dict[int, int] = field(default_factory=dict)
    #: Executed run index -> the shared scan context of its fusion group.
    context_of: Dict[int, FusedScanContext] = field(default_factory=dict)
    #: Number of multi-run fusion groups (shared contexts created).
    groups: int = 0

    def validate(self) -> "FusionPlan":
        # The invariant the executor relies on: a run is a dedupe twin
        # or a fused group member, never both — `deduped_runs` and
        # `fused_runs` partition cleanly, and twins expand only after
        # their representative's fused evaluation has finished.
        overlap = set(self.twin_of) & set(self.context_of)
        assert not overlap, f"runs {sorted(overlap)} both deduped and fused"
        return self


def fused_dedupe_key(spec) -> Optional[tuple]:
    """Capability-projected dynamics identity of one spec, or ``None``.

    Starts from the same guards as the executor's plain
    ``_dedupe_key`` — no faults, no capture, no calibration overrides, a
    declarative :class:`~repro.runtime.spec.StrategySpec`, a resolvable
    catalog key, a bidding policy with a dynamics signature — then
    projects the signature down to the components the strategy can
    actually evaluate, using the policy's structured
    ``dynamics_components`` split (absent method ⇒ no projection, plain
    signature):

    * ``allows_spot == False`` — the scheduler never bids, never scans
      spot boundaries and never reverse-migrates: only the policy's name
      (which default result labels embed) survives;
    * ``allows_on_demand == False`` — the run can never sit on on-demand,
      so the reverse-migration threshold has no consuming code path:
      bids and the planned predicate survive, the reverse component is
      dropped.

    Two specs with equal projected keys configure byte-identical
    simulations up to the result label.
    """
    if spec.capture_trace or spec.faults is not None or spec.calibrations is not None:
        return None
    from repro.runtime.spec import StrategySpec

    if not isinstance(spec.strategy, StrategySpec):
        return None
    sig_fn = getattr(spec.bidding, "dynamics_signature", None)
    if not callable(sig_fn):
        return None
    catalog_key = spec.catalog_key()
    if catalog_key is None:
        return None
    try:
        from repro.traces.calibration import on_demand_price

        ods = tuple(
            on_demand_price(region, size)
            for region in spec.regions
            for size in spec.sizes
        )
        sig = sig_fn(ods)
        if sig is None:
            return None
        comp_fn = getattr(spec.bidding, "dynamics_components", None)
        if callable(comp_fn):
            strategy = spec.strategy()
            comp = comp_fn(ods)
            if not getattr(strategy, "allows_spot", True):
                sig = (comp["name"], "od-only")
            elif not getattr(strategy, "allows_on_demand", True):
                sig = (comp["name"], "spot-only", comp["bids"], comp["planned"])
        key = (
            catalog_key,
            spec.strategy,
            spec.mechanism,
            spec.params,
            float(spec.startup_cv),
            float(spec.service_disk_gib),
            sig,
        )
        hash(key)
    except Exception:
        return None
    return key


def rank_projection(
    spec, catalog, ladders: Dict[tuple, np.ndarray]
) -> Optional[Tuple[tuple, Optional[Dict[Tuple[str, str], float]]]]:
    """Catalog-aware refinement of :func:`fused_dedupe_key`, or ``None``.

    A bidding policy's parameters reach the simulation *only* as
    thresholds in ``price <= x`` / ``price > x`` comparisons against a
    market's step-function trace (grants, revocation warnings, re-grant
    waits, candidate filters, planned/reverse predicates) — never in
    arithmetic. The trace takes finitely many price values, so two
    thresholds with no trace price strictly between them partition every
    instant identically and are *provably indistinguishable*: the runs
    they configure are byte-identical. This key therefore replaces each
    numeric threshold with its **rank** — the count of distinct trace
    prices at or below it — in the market's sorted price ladder, which
    collapses e.g. every proactive ``k`` whose bid lands in the same gap
    between trace spikes, and every reverse fraction below the market's
    lowest price plateau.

    Returns ``(key, reverse_thresholds)``. The key covers everything the
    run's dynamics depend on *except* the reverse-migration thresholds;
    those come back separately (``{(region, size): threshold}``), or
    ``None`` when the spec's strategy never evaluates the reverse
    predicate (od-only, pure-spot) so the key alone decides equivalence.
    Reverse thresholds are deliberately not rank-projected against the
    full price ladder: the executor matches them against the *observed
    reverse band* of an executed representative — the envelope of prices
    the trajectory actually compared — which collapses every threshold
    the run never discriminated, a strict superset of ladder-rank
    equality (see :func:`band_matches`).

    Requires the spec's catalog (the ladder is trace-derived), the same
    guards as :func:`fused_dedupe_key`, and a bidding policy exposing
    numeric ``*_thresholds`` in ``dynamics_components``. ``ladders`` is
    the caller's memo of sorted unique price arrays, keyed
    ``(catalog_key, region, size)``.
    """
    if spec.capture_trace or spec.faults is not None or spec.calibrations is not None:
        return None
    from repro.runtime.spec import StrategySpec

    if not isinstance(spec.strategy, StrategySpec):
        return None
    comp_fn = getattr(spec.bidding, "dynamics_components", None)
    if not callable(comp_fn):
        return None
    catalog_key = spec.catalog_key()
    if catalog_key is None:
        return None
    try:
        from repro.traces.calibration import on_demand_price
        from repro.traces.catalog import MarketKey

        markets = [MarketKey(r, s) for r in spec.regions for s in spec.sizes]
        ods = tuple(on_demand_price(k.region, k.size) for k in markets)
        comp = comp_fn(ods)
        if "reverse_thresholds" not in comp:
            return None

        def ranks(values) -> Optional[tuple]:
            if values is None:
                return None
            out = []
            for key, value in zip(markets, values):
                lkey = (catalog_key, key.region, key.size)
                ladder = ladders.get(lkey)
                if ladder is None:
                    # Stored as a plain list: rank lookups are scalar, and
                    # bisect beats scalar np.searchsorted call overhead.
                    ladder = np.unique(catalog.trace(key).compiled.prices).tolist()
                    ladders[lkey] = ladder
                out.append(bisect.bisect_right(ladder, value))
            return tuple(out)

        strategy = spec.strategy()
        reverse: Optional[Dict[Tuple[str, str], float]] = None
        if not getattr(strategy, "allows_spot", True):
            sig = (comp["name"], "od-only")
        elif not getattr(strategy, "allows_on_demand", True):
            # Pure spot: the reverse predicate has no consuming code path.
            sig = (
                "ranks-spot",
                comp["name"],
                ranks(comp["bids"]),
                ranks(comp["planned_thresholds"]),
            )
        else:
            sig = (
                "ranks-rev",
                comp["name"],
                ranks(comp["bids"]),
                ranks(comp["planned_thresholds"]),
            )
            reverse = {
                (k.region, k.size): float(v)
                for k, v in zip(markets, comp["reverse_thresholds"])
            }
        key = (
            catalog_key,
            spec.strategy,
            spec.mechanism,
            spec.params,
            float(spec.startup_cv),
            float(spec.service_disk_gib),
            sig,
        )
        hash(key)
    except Exception:
        return None
    return key, reverse


def band_matches(
    band: Mapping, reverse: Mapping[Tuple[str, str], float]
) -> bool:
    """Would these reverse thresholds make every accept/reject call the
    band's recording run made?

    ``band`` is a scheduler's ``reverse_band``: per market, ``lo`` is the
    largest compared price the predicate accepted and ``hi`` the smallest
    it rejected, so any threshold in ``[lo, hi)`` agrees with the
    recorded run at every comparison it performed. Agreement at every
    comparison pins the whole trajectory by induction — both runs start
    identically, and at each decision the compared prices (the same ones,
    since the prefixes coincide) yield the same predicate answers — so a
    match is *proof* of byte-identical results, not a heuristic. Markets
    the run never compared impose no constraint and are absent from the
    band.
    """
    for key, (lo, hi) in band.items():
        threshold = reverse.get((key.region, key.size))
        if threshold is None or not lo <= threshold < hi:
            return False
    return True


def plan_fusion(
    specs: Sequence, pending: Sequence[int], engines: Sequence[str]
) -> FusionPlan:
    """Assign the serial path's vector-routed runs to twins and groups.

    Dedupe first — submission order, first spec of a projected-dynamics
    class is its representative — then group the runs that will actually
    execute by catalog key; every group of two or more shares one
    :class:`FusedScanContext`. Faulted and trace-capturing runs never
    join a group (their providers may overlay market behaviour), and
    runs without a catalog key have nothing to share.
    """
    plan = FusionPlan()
    rep_of: Dict[tuple, int] = {}
    by_catalog: Dict[object, List[int]] = {}
    for i in pending:
        if engines[i] != "vector":
            continue
        spec = specs[i]
        key = fused_dedupe_key(spec)
        if key is not None:
            rep = rep_of.get(key)
            if rep is not None:
                plan.twin_of[i] = rep
                continue
            rep_of[key] = i
        if spec.faults is None and not spec.capture_trace:
            catalog_key = spec.catalog_key()
            if catalog_key is not None:
                by_catalog.setdefault(catalog_key, []).append(i)
    for members in by_catalog.values():
        if len(members) < 2:
            continue
        ctx = FusedScanContext()
        plan.groups += 1
        for i in members:
            plan.context_of[i] = ctx
    return plan.validate()
