"""The batch executor: seed×variant fan-out with deterministic ordering.

``run_batch`` executes a sequence of :class:`~repro.runtime.spec.RunSpec`s
and returns results **in submission order**, whatever the worker count —
``jobs=4`` is field-for-field identical to ``jobs=1`` because every run is
fully determined by its spec (seed-derived RNG, deterministic catalog
generation). Parallel execution groups runs by catalog key so each worker
builds a given seed's catalog at most once, and non-portable runs (legacy
closure factories) transparently fall back to in-process execution.

Engine routing (``engine=``): ``"auto"`` runs a spec on the vectorized
batch engine exactly when it is eligible — vectorizable strategy and
bidding policy, no fault plan, no trace capture, no run ledger — and on
the per-event engine otherwise; results are bit-identical either way, the
vector engine just skips the no-action boundary machinery. ``"event"``
forces the per-event engine; ``"vector"`` requests the vector engine for
every run best-effort (a run whose configuration cannot be batched still
degrades to per-event inside the scheduler). A batch with a ``ledger``
always runs per-event so journal replays stay comparable across versions.
Which engine actually ran each spec is reported as
:attr:`~repro.runtime.telemetry.RunTelemetry.engine_kind`.

On the serial path, vector-routed runs are additionally *deduplicated*:
two specs whose catalogs, strategies, seeds and bidding **dynamics** are
identical (e.g. proactive bids that all clamp at the provider's cap)
drive byte-identical simulations, so the executor runs one representative
and clones its result for the twins — reported as ``deduped_runs``.

Under ``"auto"`` (and the explicit ``"fused"`` selector) the serial path
goes one step further and *fuses* the runs that do execute: dedupe keys
are capability-projected (:func:`repro.runtime.fused.fused_dedupe_key` —
parameters a strategy provably never reads are dropped, collapsing more
twins), and the surviving vector-routed runs of each catalog group share
one :class:`~repro.runtime.fused.FusedScanContext`, so every boundary
scan window over a given trace timeline is materialised once for the
whole group instead of once per run. ``"vector"`` deliberately skips
both — it is the unfused per-run reference path the fused engine is
tested against. Fusion is reported as ``fused_groups``/``fused_runs``.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import SimulationResult
from repro.errors import ConfigurationError, LedgerError, WorkerCrashError
from repro.obs.capture import notify_run, trace_capture_active
from repro.obs.sinks import NULL_SINK, MemorySink, TraceSink
from repro.runtime.cache import TraceCatalogCache, shared_catalog_cache
from repro.runtime.ledger import RunLedger, resolve_ledger_path
from repro.runtime.shm import publish_catalog, release_segment, shm_available
from repro.runtime.spec import (
    BatchSpec,
    RunSpec,
    StrategySpec,
    batch_fingerprint,
    spec_fingerprint,
)
from repro.runtime.telemetry import BatchTelemetry, RunTelemetry, notify_batch
from repro.runtime.vector import ENGINE_KINDS, spec_vector_eligible

__all__ = ["BatchResult", "run_batch"]

#: Progress hook: called once per completed run (completion order).
ProgressCallback = Callable[[RunTelemetry], None]

#: Default retry budget for crashed runs and its exponential-backoff base.
#: Retrying is always safe: a run is a pure function of its spec, so a
#: re-execution is byte-identical to the attempt that crashed.
DEFAULT_RETRIES = 2
DEFAULT_RETRY_BACKOFF_S = 0.05


@dataclass(frozen=True)
class BatchResult:
    """Results plus instrumentation of one executed batch."""

    results: Tuple[SimulationResult, ...]  #: submission order
    run_telemetry: Tuple[RunTelemetry, ...]  #: submission order
    telemetry: BatchTelemetry


def _attempt_one(
    spec: RunSpec,
    cache: Optional[TraceCatalogCache],
    attempt: int,
    prebuilt: Optional[Tuple[object, str]] = None,
    engine: str = "event",
    fused: Optional[object] = None,
    notes: Optional[dict] = None,
) -> Tuple[SimulationResult, RunTelemetry]:
    """One execution attempt of one spec (no retry handling).

    ``prebuilt`` is ``(catalog, source)`` when the caller already resolved
    the catalog (the shared-memory worker path); otherwise the catalog is
    resolved through ``cache``. ``fused`` is the run's fusion group's
    shared :class:`~repro.runtime.fused.FusedScanContext`, if any.
    ``notes``, when given, receives execution by-products that don't
    belong in the result pair — currently ``"reverse_band"``, the
    scheduler's observed reverse-threshold envelope the serial fusion
    tier matches later specs against.
    """
    from repro.core.simulation import run_simulation_observed

    faults = spec.faults
    if faults is not None and getattr(faults, "crash_seeds", ()):
        if faults.should_crash(spec.seed, attempt):
            raise WorkerCrashError(
                f"injected worker crash: seed={spec.seed} attempt={attempt}"
            )
    start = time.perf_counter()
    catalog = None
    cache_hit = False
    catalog_wall = 0.0
    source = ""
    if prebuilt is not None:
        catalog, source = prebuilt
        cache_hit = True
    else:
        key = spec.catalog_key() if cache is not None else None
        if key is not None:
            catalog, cache_hit, catalog_wall = cache.get_or_build(key)
            source = "cache" if cache_hit else "build"
    sink: TraceSink = MemorySink() if spec.capture_trace else NULL_SINK
    observed = run_simulation_observed(
        spec.to_config(catalog=catalog), sink=sink, engine=engine, fused=fused
    )
    result = observed.result
    if notes is not None:
        notes["reverse_band"] = observed.reverse_band
    wall = time.perf_counter() - start
    trace_events = None
    if spec.capture_trace:
        # Ship events as plain dicts so they pickle across the pool boundary.
        trace_events = tuple(e.to_dict() for e in sink.events)  # type: ignore[union-attr]
    telemetry = RunTelemetry(
        label=result.label,
        seed=spec.seed,
        wall_s=wall,
        events_processed=observed.fired_events,
        catalog_wall_s=catalog_wall,
        catalog_cache_hit=cache_hit,
        catalog_source=source,
        worker_pid=os.getpid(),
        attempts=attempt + 1,
        metrics=observed.metrics.to_dict(),
        trace_events=trace_events,
        engine_kind=observed.engine_kind,
        vector_checks=observed.vector_checks,
        # A run is "fused" only if the shared context could actually be
        # consulted — i.e. the scheduler really ran vectorized.
        fused=fused is not None and observed.engine_kind == "vector",
    )
    return result, telemetry


def _execute_one(
    spec: RunSpec,
    cache: Optional[TraceCatalogCache],
    retries: int = DEFAULT_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    engine: str = "event",
    fused: Optional[object] = None,
    notes: Optional[dict] = None,
) -> Tuple[SimulationResult, RunTelemetry]:
    """Run one spec with retry/backoff, resolving its catalog via ``cache``.

    A crashed attempt (injected :class:`~repro.errors.WorkerCrashError` or
    any organic exception) is retried up to ``retries`` times with
    exponential backoff; the final failure propagates. Retries cannot
    change results — a run is a pure function of its spec (a shared fused
    scan context only caches rows the run would compute anyway).
    """
    for attempt in range(retries + 1):
        try:
            return _attempt_one(
                spec, cache, attempt, engine=engine, fused=fused, notes=notes
            )
        except Exception:
            if attempt >= retries:
                raise
            if retry_backoff_s > 0:
                time.sleep(retry_backoff_s * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def _execute_group(
    specs: Tuple[RunSpec, ...],
    retries: int = DEFAULT_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    engines: Optional[Tuple[str, ...]] = None,
) -> List[Tuple[SimulationResult, RunTelemetry]]:
    """Pool-worker entry point: run a catalog-sharing group serially."""
    cache = shared_catalog_cache()
    if engines is None:
        engines = ("event",) * len(specs)
    return [
        _execute_one(spec, cache, retries, retry_backoff_s, engine)
        for spec, engine in zip(specs, engines)
    ]


def _execute_one_shm(
    spec: RunSpec,
    plan,
    retries: int = DEFAULT_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    engine: str = "event",
) -> List[Tuple[SimulationResult, RunTelemetry]]:
    """Pool-worker entry point: one run against a shared-memory catalog plan.

    The catalog is rehydrated as zero-copy views over the published
    segment (cached per segment within the worker); if attaching fails for
    any reason the worker quietly builds the catalog through its own
    process cache instead — same results, just slower.
    """
    from repro.runtime.shm import attach_catalog

    prebuilt: Optional[Tuple[object, str]] = None
    try:
        prebuilt = (attach_catalog(plan), "shm")
    except Exception:
        prebuilt = None
    cache = None if prebuilt is not None else shared_catalog_cache()
    for attempt in range(retries + 1):
        try:
            return [_attempt_one(spec, cache, attempt, prebuilt=prebuilt, engine=engine)]
        except Exception:
            if attempt >= retries:
                raise
            if retry_backoff_s > 0:
                time.sleep(retry_backoff_s * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def _publish_plans(
    cache: Optional[TraceCatalogCache], keys: Sequence[object]
) -> Tuple[Dict[object, object], List[object]]:
    """Publish each unique catalog once to shared memory.

    Returns ``({key: plan}, [segment handles])``; empty when shared memory
    is unavailable (or disabled via ``REPRO_SHM=0``) or publishing fails,
    in which case the caller uses the grouped pickling path instead.
    """
    if cache is None or not keys or not shm_available():
        return {}, []
    plans: Dict[object, object] = {}
    segments: List[object] = []
    try:
        for key in keys:
            if key in plans:
                continue
            catalog, _, _ = cache.get_or_build(key)  # type: ignore[arg-type]
            plan, segment = publish_catalog(catalog)
            plans[key] = plan
            segments.append(segment)
    except Exception:
        for segment in segments:
            release_segment(segment)
        return {}, []
    return plans, segments


def _resolve_engine(spec: RunSpec, engine: str, ledgered: bool) -> str:
    """Which engine one spec runs on, given the batch's ``engine`` selector.

    A ledgered batch always runs per-event (journal replays must stay
    comparable across package versions regardless of routing defaults).
    ``"vector"`` and ``"fused"`` are best-effort forces: every run is
    routed to the vector engine, which itself still degrades to
    per-event when the configuration cannot be batched (the two differ
    only at the batch level — ``"fused"`` additionally shares scan work
    across the group, ``"vector"`` keeps runs independent).
    Under ``"auto"``, faulted and trace-capturing runs stay on the event
    engine — fault overlays and narration want the per-boundary walk —
    and everything else goes to the vector engine when eligible.
    """
    if engine == "event" or ledgered:
        return "event"
    if engine in ("vector", "fused"):
        return "vector"
    if spec.faults is not None or spec.capture_trace:
        return "event"
    return "vector" if spec_vector_eligible(spec) else "event"


def _dedupe_key(spec: RunSpec) -> Optional[tuple]:
    """Hashable dynamics identity of one vector-routed spec, or ``None``.

    Two specs with equal keys configure byte-identical simulations up to
    the result label: same catalog (seed, horizon, markets, calibration),
    same declarative strategy, same mechanism timing, same startup
    distribution — and a bidding policy whose
    :meth:`~repro.core.bidding.BiddingPolicy.dynamics_signature` matches,
    i.e. the *effective* bids and migration thresholds coincide (e.g.
    proactive ``k`` values that all clamp at the provider's bid cap).
    Anything the signature cannot vouch for (calibration overrides that
    could move on-demand prices, stateful policies, legacy strategy
    callables, faults, capture) disables deduplication for that spec.
    """
    if spec.capture_trace or spec.faults is not None or spec.calibrations is not None:
        return None
    if not isinstance(spec.strategy, StrategySpec):
        return None
    sig_fn = getattr(spec.bidding, "dynamics_signature", None)
    if not callable(sig_fn):
        return None
    catalog_key = spec.catalog_key()
    if catalog_key is None:
        return None
    try:
        from repro.traces.calibration import on_demand_price

        ods = tuple(
            on_demand_price(region, size)
            for region in spec.regions
            for size in spec.sizes
        )
        sig = sig_fn(ods)
        if sig is None:
            return None
        key = (
            catalog_key,
            spec.strategy,
            spec.mechanism,
            spec.params,
            float(spec.startup_cv),
            float(spec.service_disk_gib),
            sig,
        )
        hash(key)
    except Exception:
        return None
    return key


# One persistent pool per worker count: reusing workers across batches keeps
# their catalog caches warm over the many small batches an experiment emits.
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def _discard_pool(jobs: int) -> None:
    """Drop a broken pool so the next batch gets a fresh one."""
    pool = _POOLS.pop(jobs, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


def _open_ledger(
    ledger: Union[str, Path, None],
    resume: bool,
    specs: Tuple[RunSpec, ...],
    fingerprints: Tuple[str, ...],
    batch_fp: str,
) -> Tuple[Optional[RunLedger], Dict[int, Tuple[SimulationResult, RunTelemetry]], bool]:
    """Open (or resume) the batch's journal.

    Returns ``(journal, replayed slots, resumed)``. With ``resume=True``
    an existing ledger is validated against ``batch_fp`` — a mismatch is a
    hard :class:`~repro.errors.LedgerError`, never a silent partial reuse
    — and its intact run records become pre-filled result slots. Without
    ``resume`` (or when no file exists yet) a fresh ledger is started;
    :meth:`RunLedger.start` refuses to clobber a same-batch journal.
    """
    if ledger is None:
        return None, {}, False
    path = resolve_ledger_path(ledger, batch_fp)
    if resume and path.exists():
        journal, state = RunLedger.load(path)
        if state.fingerprint != batch_fp:
            raise LedgerError(
                f"ledger {path} was written for a different batch "
                f"(ledger fingerprint {state.fingerprint[:16]}..., batch "
                f"{batch_fp[:16]}...); the specs, catalogs, or package "
                "version changed — delete the ledger to start over"
            )
        if state.runs != len(specs):
            raise LedgerError(
                f"ledger {path} records a {state.runs}-run batch; "
                f"this batch has {len(specs)} runs"
            )
        replayed: Dict[int, Tuple[SimulationResult, RunTelemetry]] = {}
        for index, record in state.records.items():
            if not 0 <= index < len(specs):
                raise LedgerError(
                    f"ledger {path} records run index {index} outside the batch"
                )
            if record.fingerprint != fingerprints[index]:
                raise LedgerError(
                    f"ledger {path} run {index} fingerprint does not match "
                    "its spec — the file was modified"
                )
            replayed[index] = (record.result, record.telemetry)
        return journal, replayed, True
    return RunLedger.start(path, batch_fp, len(specs)), {}, False


def run_batch(
    runs: Union[BatchSpec, Sequence[RunSpec]],
    *,
    jobs: int = 1,
    cache: Optional[TraceCatalogCache] = None,
    progress: Optional[ProgressCallback] = None,
    retries: int = DEFAULT_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ledger: Union[str, Path, None] = None,
    resume: bool = False,
    engine: str = "auto",
) -> BatchResult:
    """Execute a batch of runs and return results in submission order.

    Parameters
    ----------
    runs:
        A :class:`BatchSpec` or sequence of :class:`RunSpec`.
    engine:
        ``"auto"`` (default) routes each eligible run — vectorizable
        policies, no faults, no trace capture, no ledger — through the
        vectorized batch engine (with serial-path cross-run fusion) and
        the rest per-event; ``"event"`` and ``"vector"`` force one
        engine batch-wide (``"vector"`` is best-effort — non-batchable
        configurations still degrade to per-event inside the scheduler —
        and stays unfused, as the per-run reference path); ``"fused"``
        is ``"vector"`` routing plus the cross-run fusion layer.
        Results are bit-identical across engines; each run's
        :class:`RunTelemetry.engine_kind` reports which one executed it.
    jobs:
        Worker processes. ``1`` (the default) runs serially in-process;
        ``N > 1`` fans catalog-sharing groups of runs across ``N`` workers.
        Results are identical either way.
    cache:
        Trace-catalog cache for the serial path (defaults to this
        process's shared cache). Workers always use their process cache.
    progress:
        Called with each run's :class:`RunTelemetry` as it completes
        (completion order, which under ``jobs > 1`` may differ from
        submission order). Not called for runs replayed from a ledger.
    retries:
        Per-run retry budget for crashed attempts (injected or organic);
        each retry re-executes the same pure spec, so retried runs are
        byte-identical to first-try runs. The consumed attempts surface on
        :class:`~repro.runtime.telemetry.RunTelemetry.attempts`.
    retry_backoff_s:
        Base sleep before a retry; doubles per attempt.
    ledger:
        Journal each completed run to this append-only JSONL file (a
        directory gets one per-batch file named by batch fingerprint).
        Appends are atomic, so an orchestrator killed mid-batch loses at
        most the run it was writing. Without ``resume``, an existing
        ledger already journaling this same batch is refused (not
        silently truncated) — pass ``resume=True`` or delete the file.
        See :mod:`repro.runtime.ledger`.
    resume:
        With ``ledger``, validate an existing journal's batch fingerprint
        and replay its completed runs instead of re-executing them —
        the final :class:`BatchResult` is byte-identical to an
        uninterrupted run at any ``jobs``. A fingerprint mismatch raises
        :class:`~repro.errors.LedgerError`; a missing file simply starts
        a fresh journal.
    """
    specs: Tuple[RunSpec, ...] = tuple(runs.runs if isinstance(runs, BatchSpec) else runs)
    if not specs:
        raise ConfigurationError("batch needs at least one run")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if retries < 0:
        raise ConfigurationError("retries must be >= 0")
    if resume and ledger is None:
        raise ConfigurationError("resume=True needs a ledger path")
    if engine not in ENGINE_KINDS:
        raise ConfigurationError(
            f"unknown engine {engine!r} (choices: {', '.join(ENGINE_KINDS)})"
        )
    if cache is None:
        cache = shared_catalog_cache()
    if trace_capture_active():
        # An observe(trace=True) scope is watching: flip every run to event
        # capture. Capture never changes results, only telemetry payloads.
        # (Fingerprints exclude capture_trace, so ledgers are unaffected.)
        specs = tuple(
            s if s.capture_trace else s.with_(capture_trace=True) for s in specs
        )

    journal: Optional[RunLedger] = None
    fingerprints: Tuple[str, ...] = ()
    resumed = False
    batch_start = time.perf_counter()
    slots: List[Optional[Tuple[SimulationResult, RunTelemetry]]] = [None] * len(specs)
    if ledger is not None:
        fingerprints = tuple(spec_fingerprint(s) for s in specs)
        journal, replayed, resumed = _open_ledger(
            ledger, resume, specs, fingerprints, batch_fingerprint(specs)
        )
        for i, pair in replayed.items():
            slots[i] = pair

    def _complete(i: int, pair: Tuple[SimulationResult, RunTelemetry]) -> None:
        """One run finished executing: journal it, then report progress.

        Journaling first is what makes `kill after n runs` recoverable:
        a run either reached the ledger or will re-execute on resume.
        """
        slots[i] = pair
        if journal is not None:
            journal.record_run(i, fingerprints[i], pair[0], pair[1])
        if progress is not None:
            progress(pair[1])

    pending = [i for i in range(len(specs)) if slots[i] is None]
    parallel_runs = 0
    shm_catalogs = 0
    deduped_runs = 0
    fused_groups = 0
    engines = tuple(_resolve_engine(s, engine, ledger is not None) for s in specs)

    try:
        if jobs == 1 or len(pending) <= 1:
            # Serial path: dedupe vector-routed runs with identical
            # dynamics. The first spec of each group (submission order) is
            # its representative; twins complete as soon as it has, so the
            # progress callback still fires in submission order.
            twin_of: Dict[int, int] = {}
            context_of: Dict[int, object] = {}
            fusion_active = engine in ("auto", "fused")
            if fusion_active:
                # Cross-run fusion: capability-projected dedupe plus shared
                # boundary-scan contexts per catalog group. Forced
                # ``"vector"`` keeps the plain unfused reference path.
                from repro.runtime.fused import band_matches, plan_fusion, rank_projection

                plan = plan_fusion(specs, pending, engines)
                twin_of = plan.twin_of
                context_of = dict(plan.context_of)
                fused_groups = plan.groups
            else:
                rep_of: Dict[tuple, int] = {}
                for i in pending:
                    if engines[i] != "vector":
                        continue
                    key = _dedupe_key(specs[i])
                    if key is None:
                        continue
                    if key in rep_of:
                        twin_of[i] = rep_of[key]
                    else:
                        rep_of[key] = i
            # Second dedupe tier, catalog-aware: once a run's catalog is in
            # the cache, bidding thresholds can be *rank-projected* against
            # the trace's price ladder — thresholds in the same gap between
            # trace prices configure provably identical runs. Reverse
            # thresholds get a sharper test still: each executed
            # representative records the envelope of prices its trajectory
            # actually compared against the reverse predicate
            # (``reverse_band``), and any later spec whose thresholds fall
            # inside that envelope would have made the identical call at
            # every comparison — so it clones. The first run of each
            # catalog executes (and builds the catalog); everyone after it
            # gets the refinement.
            rank_rep: Dict[tuple, int] = {}
            band_reps: Dict[tuple, List[Tuple[dict, int]]] = {}
            ladders: Dict[tuple, object] = {}
            for i in pending:
                rep = twin_of.get(i)
                if rep is not None:
                    # Static twins expand strictly after their
                    # representative's (fused) evaluation and never join a
                    # fusion group themselves, so `deduped_runs` and
                    # `fused_runs` can never double-count.
                    assert i not in context_of
                rkey = reverse = None
                if rep is None and fusion_active and engines[i] == "vector":
                    ck = specs[i].catalog_key()
                    catalog = cache.peek(ck) if ck is not None else None
                    if catalog is not None:
                        proj = rank_projection(specs[i], catalog, ladders)
                        if proj is not None:
                            rkey, reverse = proj
                            if reverse is None:
                                rep = rank_rep.get(rkey)
                            else:
                                for band, j in band_reps.get(rkey, ()):
                                    if band_matches(band, reverse):
                                        rep = j
                                        break
                        if rep is not None:
                            # The twin consumed the cached catalog to prove
                            # its equivalence; account the lookup as a hit.
                            cache.get_or_build(ck)
                if rep is None:
                    notes: dict = {}
                    _complete(
                        i,
                        _execute_one(
                            specs[i],
                            cache,
                            retries,
                            retry_backoff_s,
                            engines[i],
                            fused=context_of.get(i),
                            notes=notes,
                        ),
                    )
                    if fusion_active and engines[i] == "vector" and rkey is None:
                        # This run built its catalog: project its key now
                        # so later threshold-equivalent specs clone it.
                        ck = specs[i].catalog_key()
                        catalog = cache.peek(ck) if ck is not None else None
                        if catalog is not None:
                            proj = rank_projection(specs[i], catalog, ladders)
                            if proj is not None:
                                rkey, reverse = proj
                    if rkey is not None:
                        if reverse is None:
                            rank_rep.setdefault(rkey, i)
                        else:
                            band = notes.get("reverse_band")
                            if band is not None:
                                band_reps.setdefault(rkey, []).append((band, i))
                    continue
                rep_pair = slots[rep]
                assert rep_pair is not None  # representative precedes its twins
                rep_result, rep_telemetry = rep_pair
                # The spec's own label when set; otherwise the default label
                # is a pure function of the dynamics key (bidding name is in
                # the signature), so the representative's label is the twin's.
                label = specs[i].label or rep_result.label
                _complete(
                    i,
                    (
                        dataclasses.replace(rep_result, label=label),
                        dataclasses.replace(
                            rep_telemetry,
                            label=label,
                            deduped=True,
                            fused=False,
                            # The clone resolved no catalog of its own; keep
                            # the batch's build/hit accounting honest.
                            catalog_cache_hit=True,
                            catalog_wall_s=0.0,
                            catalog_source="cache",
                        ),
                    ),
                )
                deduped_runs += 1
        elif pending:
            portable: List[Tuple[int, object]] = []
            local: List[int] = []
            for i in pending:
                key = specs[i].catalog_key()
                if key is None or not specs[i].is_portable():
                    local.append(i)
                else:
                    portable.append((i, key))
            pool = _get_pool(jobs)

            # Preferred plan: publish each unique catalog to shared memory
            # once and fan out PER RUN — workers rehydrate zero-copy views,
            # so runs sharing a catalog no longer have to share a worker and
            # a batch of V variants over S seeds parallelises V×S wide
            # instead of S wide.
            plans, segments = _publish_plans(cache, [k for _, k in portable])
            shm_catalogs = len(plans)
            if plans:
                futures = [
                    (
                        [i],
                        pool.submit(
                            _execute_one_shm,
                            specs[i],
                            plans[key],
                            retries,
                            retry_backoff_s,
                            engines[i],
                        ),
                    )
                    for i, key in portable
                ]
            else:
                # Fallback: group portable runs by catalog key so one worker
                # builds each catalog once; groups keep first-appearance order.
                groups: Dict[object, List[int]] = {}
                for i, key in portable:
                    groups.setdefault(key, []).append(i)
                futures = [
                    (
                        indices,
                        pool.submit(
                            _execute_group,
                            tuple(specs[i] for i in indices),
                            retries,
                            retry_backoff_s,
                            tuple(engines[i] for i in indices),
                        ),
                    )
                    for indices in groups.values()
                ]
            # Non-portable runs execute in-process while the pool churns.
            for i in local:
                _complete(
                    i, _execute_one(specs[i], cache, retries, retry_backoff_s, engines[i])
                )
            try:
                for indices, future in futures:
                    try:
                        group_pairs = future.result()
                    except BrokenProcessPool:
                        # The pool died (hard worker crash, OOM kill, ...).
                        # Discard it and fall back to in-process execution for
                        # these runs — results are identical, only slower.
                        _discard_pool(jobs)
                        group_pairs = [
                            _execute_one(specs[i], cache, retries, retry_backoff_s, engines[i])
                            for i in indices
                        ]
                    for i, pair in zip(indices, group_pairs):
                        _complete(i, pair)
                        parallel_runs += 1
            finally:
                # Every future has resolved (or the batch is aborting): the
                # segments can go — attached workers keep their mappings.
                for segment in segments:
                    release_segment(segment)
    finally:
        if journal is not None:
            journal.close()

    results = tuple(pair[0] for pair in slots)  # type: ignore[union-attr]
    run_telemetry = tuple(pair[1] for pair in slots)  # type: ignore[union-attr]
    # Report to observation scopes in submission order — this, not worker
    # completion order, is what keeps trace files identical at any --jobs.
    for t in run_telemetry:
        notify_run(
            t.label, t.seed, t.trace_events, t.metrics,
            engine=t.engine_kind, fused=t.fused, deduped=t.deduped,
        )
    telemetry = BatchTelemetry(
        runs=len(specs),
        wall_s=time.perf_counter() - batch_start,
        catalog_builds=sum(1 for t in run_telemetry if not t.catalog_cache_hit),
        catalog_cache_hits=sum(1 for t in run_telemetry if t.catalog_cache_hit),
        events_processed=sum(t.events_processed for t in run_telemetry),
        jobs=jobs,
        parallel_runs=parallel_runs,
        shm_catalogs=shm_catalogs,
        resumed=resumed,
        replayed_runs=len(specs) - len(pending),
        engine=engine,
        vector_runs=sum(1 for t in run_telemetry if t.engine_kind == "vector"),
        vector_checks=sum(t.vector_checks for t in run_telemetry),
        deduped_runs=deduped_runs,
        fused_groups=fused_groups,
        fused_runs=sum(1 for t in run_telemetry if t.fused),
    )
    notify_batch(telemetry)
    return BatchResult(results=results, run_telemetry=run_telemetry, telemetry=telemetry)
