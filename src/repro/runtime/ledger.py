"""The journaled run ledger: crash-safe, resumable batch execution.

A :class:`RunLedger` is an append-only JSONL file that records a batch's
identity (one *header* record) followed by one *run* record per completed
:class:`~repro.runtime.spec.RunSpec` — its spec fingerprint, distilled
:class:`~repro.core.results.SimulationResult`, telemetry payload, and
attempt count. ``run_batch(..., ledger=path)`` journals as it goes;
``run_batch(..., ledger=path, resume=True)`` validates the header against
the batch being executed, replays every intact journaled run without
re-executing it, and submits only the remainder.

Guarantees
----------
* **Atomic appends.** Each record is one ``\\n``-terminated line written
  with a single ``write`` + ``flush`` + ``fsync``. A crash (SIGKILL, OOM,
  power loss) can tear at most the final line.
* **Torn tails are tolerated.** On load, a trailing record that does not
  parse as JSON (or was never newline-terminated) is truncated from the
  file and its run simply re-executes, so appends made after recovery
  always start on a fresh line — even across repeated crash/resume
  cycles. A corrupt record *before* an intact one means the file was
  edited, not torn — that is a hard :class:`~repro.errors.LedgerError`.
* **Fingerprinted headers.** The header carries the batch fingerprint
  (package version + ordered per-spec content hashes, which subsume each
  run's catalog identity). Resuming against a batch whose fingerprint
  differs is a hard error: a ledger never silently grafts results from
  one experiment onto another.
* **Byte-identical resumption.** Results round-trip through JSON with
  ``repr``-exact floats, so a resumed batch's final report is
  byte-identical to an uninterrupted run at any ``--jobs``.

The file format is documented in ``docs/RESUME.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.results import SimulationResult
from repro.errors import LedgerError
from repro.runtime.telemetry import RunTelemetry

__all__ = ["LEDGER_VERSION", "LedgerRecord", "LedgerState", "RunLedger", "resolve_ledger_path"]

#: Bumped when the record schema changes incompatibly.
LEDGER_VERSION = 1


@dataclasses.dataclass(frozen=True)
class LedgerRecord:
    """One journaled completed run."""

    index: int  #: submission-order position in the batch
    fingerprint: str  #: the run's spec content hash
    result: SimulationResult
    telemetry: RunTelemetry


@dataclasses.dataclass(frozen=True)
class LedgerState:
    """A loaded ledger: header fields plus every intact run record."""

    fingerprint: str  #: batch fingerprint from the header
    version: int  #: ledger schema version
    package_version: str
    runs: int  #: batch size recorded in the header
    records: Dict[int, LedgerRecord]
    dropped_torn_tail: bool  #: a torn trailing record was discarded


def resolve_ledger_path(ledger: Union[str, Path], fingerprint: str) -> Path:
    """Resolve a user-supplied ledger argument to a concrete file path.

    A directory (existing, or a path spelled with a trailing separator)
    holds one ledger per batch, named by batch fingerprint — this is what
    lets ``repro-experiments --ledger DIR`` journal the many independent
    batches one experiment run emits. Anything else is used verbatim as a
    single batch's ledger file.
    """
    path = Path(ledger)
    raw = str(ledger)
    # A trailing "/" spells directory intent on every platform; also honor
    # the native separators so "dir\\" works on Windows.
    trailing_sep = raw.endswith(("/", os.sep)) or (
        os.altsep is not None and raw.endswith(os.altsep)
    )
    if path.is_dir() or trailing_sep:
        path.mkdir(parents=True, exist_ok=True)
        return path / f"batch-{fingerprint[:16]}.jsonl"
    return path


def _header_fingerprint(path: Path) -> Optional[str]:
    """The batch fingerprint in ``path``'s header record, or ``None`` when
    the file is missing or its first line is not an intact header."""
    try:
        with open(path, "rb") as fh:
            first = fh.readline()
    except OSError:
        return None
    if not first.endswith(b"\n"):
        return None
    try:
        record = json.loads(first.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or record.get("kind") != "header":
        return None
    fingerprint = record.get("fingerprint")
    return str(fingerprint) if fingerprint is not None else None


def _result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return dataclasses.asdict(result)


def _result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(**data)


def _telemetry_to_dict(telemetry: RunTelemetry) -> Dict[str, Any]:
    d = dataclasses.asdict(telemetry)
    if d.get("trace_events") is not None:
        d["trace_events"] = list(d["trace_events"])
    return d


def _telemetry_from_dict(data: Dict[str, Any]) -> RunTelemetry:
    if data.get("trace_events") is not None:
        data["trace_events"] = tuple(data["trace_events"])
    # Replayed telemetry reports the *original* execution's facts
    # (wall clock, worker pid, attempts) plus the replay marker.
    data["replayed"] = True
    return RunTelemetry(**data)


class RunLedger:
    """Append-only journal of one batch's completed runs.

    Create with :meth:`start` (fresh file, header written immediately) or
    :meth:`load` (parse an existing file for resumption, then keep
    appending to it).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------- writing
    @classmethod
    def start(cls, path: Union[str, Path], fingerprint: str, runs: int) -> "RunLedger":
        """Create a fresh ledger and write its batch header.

        Refuses to overwrite an existing ledger whose header names the
        *same* batch fingerprint: that journal is resumable, and silently
        truncating it (e.g. a rerun that forgot ``--resume``) would
        irreversibly destroy completed work. A file holding a different
        batch — or unreadable garbage — is overwritten as before.
        """
        from repro._version import __version__

        ledger = cls(path)
        if _header_fingerprint(ledger.path) == fingerprint:
            raise LedgerError(
                f"ledger {ledger.path} already journals this exact batch; "
                "resume it with resume=True (--resume), or delete the file "
                "to discard the journaled runs and start over"
            )
        ledger.path.parent.mkdir(parents=True, exist_ok=True)
        ledger._fh = open(ledger.path, "w", encoding="utf-8")
        ledger._append(
            {
                "kind": "header",
                "version": LEDGER_VERSION,
                "package_version": __version__,
                "fingerprint": fingerprint,
                "runs": runs,
            }
        )
        return ledger

    def record_run(
        self, index: int, fingerprint: str, result: SimulationResult, telemetry: RunTelemetry
    ) -> None:
        """Atomically append one completed run."""
        self._append(
            {
                "kind": "run",
                "index": index,
                "fingerprint": fingerprint,
                "attempts": telemetry.attempts,
                "result": _result_to_dict(result),
                "telemetry": _telemetry_to_dict(telemetry),
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- reading
    @classmethod
    def load(cls, path: Union[str, Path]) -> Tuple["RunLedger", LedgerState]:
        """Parse an existing ledger for resumption.

        Returns the ledger (positioned to append further records) and its
        :class:`LedgerState`. Tolerates exactly one torn trailing line —
        unparseable, or never newline-terminated — which is **truncated
        from the file** so that later appends start on a fresh line
        (otherwise the first post-resume record would concatenate onto
        the fragment, corrupting the journal for every subsequent
        resume). Any other structural damage raises :class:`LedgerError`.
        """
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise LedgerError(f"cannot read ledger {path}: {exc}") from exc
        terminated = data.endswith(b"\n")
        lines = data.split(b"\n")
        if terminated:
            lines.pop()  # the empty sentinel after the final newline
        if not lines:
            raise LedgerError(f"ledger {path} is empty")

        parsed: list[Dict[str, Any]] = []
        intact_end = 0  # byte offset just past the last intact record
        dropped_torn_tail = False
        for lineno, raw_line in enumerate(lines, start=1):
            last = lineno == len(lines)
            try:
                record = json.loads(raw_line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (ValueError, UnicodeDecodeError) as exc:
                if last:
                    # A crash mid-append tears at most the final line.
                    dropped_torn_tail = True
                    break
                raise LedgerError(
                    f"ledger {path} line {lineno} is corrupt (not a torn "
                    f"tail — the file was modified): {exc}"
                ) from exc
            if last and not terminated:
                # Parses, but the crash cut the trailing newline: the
                # append never completed, so the record is not durable.
                dropped_torn_tail = True
                break
            parsed.append(record)
            intact_end += len(raw_line) + 1

        if not parsed or parsed[0].get("kind") != "header":
            raise LedgerError(f"ledger {path} does not start with a header record")
        header = parsed[0]
        version = header.get("version")
        if version != LEDGER_VERSION:
            raise LedgerError(
                f"ledger {path} has schema version {version!r}; "
                f"this build reads version {LEDGER_VERSION}"
            )

        records: Dict[int, LedgerRecord] = {}
        for record in parsed[1:]:
            if record.get("kind") != "run":
                raise LedgerError(
                    f"ledger {path} contains unknown record kind {record.get('kind')!r}"
                )
            try:
                rec = LedgerRecord(
                    index=int(record["index"]),
                    fingerprint=str(record["fingerprint"]),
                    result=_result_from_dict(record["result"]),
                    telemetry=_telemetry_from_dict(record["telemetry"]),
                )
            except (KeyError, TypeError) as exc:
                raise LedgerError(
                    f"ledger {path} holds a malformed run record: {exc}"
                ) from exc
            records[rec.index] = rec

        state = LedgerState(
            fingerprint=str(header.get("fingerprint", "")),
            version=int(version),
            package_version=str(header.get("package_version", "")),
            runs=int(header.get("runs", 0)),
            records=records,
            dropped_torn_tail=dropped_torn_tail,
        )
        if dropped_torn_tail:
            # Cut the torn fragment out of the file *before* handing back
            # an append handle; appending after a fragment would weld new
            # JSON onto it, and the next load would reject the weld as
            # interior corruption.
            try:
                with open(path, "r+b") as fh:
                    fh.truncate(intact_end)
                    fh.flush()
                    os.fsync(fh.fileno())
            except OSError as exc:
                raise LedgerError(
                    f"cannot truncate torn tail of ledger {path}: {exc}"
                ) from exc
        ledger = cls(path)
        return ledger, state
