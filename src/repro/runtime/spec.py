"""Pickleable run descriptions: what to simulate, without any live objects.

A :class:`StrategySpec` names a registered strategy kind plus its
constructor arguments, so a strategy can be rebuilt on the far side of a
process boundary (closures cannot cross one). A :class:`RunSpec` bundles a
strategy spec with the bidding policy, mechanism, market subset, and seed —
everything :func:`repro.core.simulation.run_simulation` needs — and a
:class:`BatchSpec` is an ordered set of runs executed together so they can
share trace catalogs.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import hashlib
import json
import pickle
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple, Union

from repro.core import registry as _registry
from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.core.strategies import HostingStrategy
from repro.errors import ConfigurationError
from repro.traces.calibration import REGIONS, SIZES
from repro.traces.catalog import MarketKey
from repro.units import days
from repro.vm.mechanisms import Mechanism, MechanismParams, TYPICAL_PARAMS

__all__ = [
    "BatchSpec",
    "RunSpec",
    "StrategySpec",
    "batch_fingerprint",
    "register_strategy_kind",
    "spec_fingerprint",
    "strategy_kinds",
]


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    The reduction is *structural*: dataclasses become ``[module-qualified
    class name, {field: value}]``, enums their module-qualified class +
    value, mappings sorted key/value lists, and callables their
    module-qualified name. Two objects reduce to the
    same form iff they would configure a simulation identically, which is
    what the run ledger's fingerprints need — no pickle bytes (unstable
    across interpreter versions), no ``id()``s, no dict ordering.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; JSON uses the same shortest form.
        return obj
    if isinstance(obj, enum.Enum):
        # Module-qualified, like callables below: two same-named enums from
        # different modules must not fingerprint identically.
        cls = type(obj)
        return ["enum", f"{cls.__module__}.{cls.__qualname__}", _canonical(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return [f"{cls.__module__}.{cls.__qualname__}", fields]
    if isinstance(obj, Mapping):
        items = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        return ["map", sorted(items, key=lambda kv: json.dumps(kv[0], sort_keys=True))]
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(_canonical(x), sort_keys=True) for x in obj)]
    # Numpy scalars and anything else numeric-like.
    for caster in (int, float):
        try:
            cast = caster(obj)
        except (TypeError, ValueError):
            continue
        if type(cast)(obj) == cast:
            return cast
    if callable(obj):
        # Legacy factory callables: identified by qualified name only (two
        # distinct closures with one name collide — RunSpec.is_portable()
        # already steers ledgered batches towards declarative specs).
        mod = getattr(obj, "__module__", "?")
        qual = getattr(obj, "__qualname__", repr(type(obj).__name__))
        return ["callable", mod, qual]
    raise ConfigurationError(
        f"cannot fingerprint {type(obj).__name__!r} value {obj!r}"
    )


def spec_fingerprint(spec: "RunSpec") -> str:
    """Stable content hash of one :class:`RunSpec`.

    Only fields that determine the simulation *result* participate;
    ``capture_trace`` is excluded (it changes telemetry payloads, never
    results), so a batch resumed inside an ``observe(trace=True)`` scope
    still matches its ledger.
    """
    fields = {
        f.name: _canonical(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "capture_trace"
    }
    blob = json.dumps(["RunSpec", fields], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def batch_fingerprint(specs: Sequence["RunSpec"]) -> str:
    """Content hash of a whole batch: package version + ordered run hashes.

    Every run's fingerprint already covers its catalog identity (seed,
    horizon, regions, sizes, calibration overrides), so two equal batch
    fingerprints imply identical catalogs, specs, and run order.
    """
    from repro._version import __version__

    blob = json.dumps(
        ["batch", __version__, [spec_fingerprint(s) for s in specs]],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

def register_strategy_kind(
    kind: str,
    builder: Callable[..., HostingStrategy],
    *,
    override: bool = False,
    **metadata: Any,
) -> None:
    """Register a strategy constructor under ``kind`` for spec building.

    Thin wrapper over :func:`repro.core.registry.register_strategy_kind`
    — the decorator registry is the single source of truth. Duplicate
    registration raises :class:`~repro.errors.ConfigurationError` unless
    ``override=True`` (it used to silently clobber the existing entry).
    """
    _registry.register_strategy_kind(kind, builder, override=override, **metadata)


def strategy_kinds() -> list[str]:
    """All registered strategy kinds, sorted (built-ins plus plugins)."""
    return _registry.strategy_kinds()


@dataclass(frozen=True)
class StrategySpec:
    """A strategy by name plus constructor arguments — hashable, pickleable.

    Calling the spec builds a fresh strategy, so a ``StrategySpec`` is a
    drop-in :data:`~repro.core.simulation.StrategyFactory` that also
    survives pickling (unlike the lambdas it replaces).
    """

    kind: str
    args: Tuple[Any, ...] = ()
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Raises ConfigurationError for unknown kinds (after giving the
        # registry a chance to load built-ins and entry-point plugins).
        _registry.strategy_info(self.kind)

    # -------------------------------------------------------------- builders
    @classmethod
    def of(cls, kind: str, *args: Any, **kwargs: Any) -> "StrategySpec":
        """Spec for any registered kind with arbitrary constructor args."""
        return cls(kind=kind, args=tuple(args), options=tuple(sorted(kwargs.items())))

    @classmethod
    def single(cls, key: MarketKey) -> "StrategySpec":
        return cls.of("single", key)

    @classmethod
    def pure_spot(cls, key: MarketKey) -> "StrategySpec":
        return cls.of("pure-spot", key)

    @classmethod
    def on_demand(cls, key: MarketKey) -> "StrategySpec":
        return cls.of("on-demand", key)

    @classmethod
    def multi_market(cls, region: str, service_units: int = 8) -> "StrategySpec":
        return cls.of("multi-market", region, service_units=service_units)

    @classmethod
    def multi_region(
        cls, regions: Sequence[str], service_units: int = 8
    ) -> "StrategySpec":
        return cls.of("multi-region", tuple(regions), service_units=service_units)

    @classmethod
    def stability(
        cls,
        regions: Sequence[str],
        service_units: int = 8,
        stability_weight: float = 1.0,
        **kwargs: Any,
    ) -> "StrategySpec":
        return cls.of(
            "stability",
            tuple(regions),
            service_units=service_units,
            stability_weight=stability_weight,
            **kwargs,
        )

    @classmethod
    def index_tracking(
        cls,
        regions: Sequence[str],
        service_units: int = 8,
        n_markets: int = 3,
        band: float = 0.15,
        **kwargs: Any,
    ) -> "StrategySpec":
        return cls.of(
            "index-tracking",
            tuple(regions),
            service_units=service_units,
            n_markets=n_markets,
            band=band,
            **kwargs,
        )

    @classmethod
    def no_fault_tolerance(cls, key: MarketKey, **kwargs: Any) -> "StrategySpec":
        return cls.of("no-ft", key, **kwargs)

    @classmethod
    def portfolio_bid(
        cls,
        regions: Sequence[str],
        service_units: int = 8,
        risk_cap: float = 0.05,
        **kwargs: Any,
    ) -> "StrategySpec":
        return cls.of(
            "portfolio-bid",
            tuple(regions),
            service_units=service_units,
            risk_cap=risk_cap,
            **kwargs,
        )

    # ------------------------------------------------------------- execution
    def build(self) -> HostingStrategy:
        """Construct a fresh strategy instance."""
        return _registry.strategy_builder(self.kind)(*self.args, **dict(self.options))

    def __call__(self) -> HostingStrategy:
        return self.build()

    def __repr__(self) -> str:  # pragma: no cover
        opts = ", ".join(f"{k}={v!r}" for k, v in self.options)
        parts = ", ".join(filter(None, [", ".join(map(repr, self.args)), opts]))
        return f"StrategySpec({self.kind}: {parts})"


#: Anything that builds a strategy: a declarative spec or a legacy factory
#: callable (the latter cannot cross process boundaries).
StrategyLike = Union[StrategySpec, Callable[[], HostingStrategy]]


@dataclass(frozen=True)
class RunSpec:
    """One scheduler run, declaratively: the pickleable sibling of
    :class:`~repro.core.simulation.SimulationConfig`.

    Unlike ``SimulationConfig`` it never holds a live catalog — the
    executor resolves one through the trace-catalog cache — and its
    ``strategy`` should be a :class:`StrategySpec` so the run can be
    shipped to a worker process (a plain factory callable is accepted but
    forces in-process execution).
    """

    strategy: StrategyLike
    bidding: BiddingPolicy = field(default_factory=ProactiveBidding)
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE
    params: MechanismParams = TYPICAL_PARAMS
    seed: int = 0
    horizon_s: float = days(30)
    regions: tuple = REGIONS
    sizes: tuple = SIZES
    calibrations: Optional[Mapping[tuple, Any]] = None
    startup_cv: float = 0.25
    service_disk_gib: float = 2.0
    label: str = ""
    #: Optional :class:`repro.testkit.faults.FaultPlan`. Frozen and
    #: pickleable, so faulted runs cross the process pool unchanged —
    #: a stormed batch is byte-identical at any ``jobs`` value. The fault
    #: overlay is applied per run *after* catalog-cache resolution, so the
    #: cache only ever holds clean base catalogs.
    faults: Optional[Any] = None
    #: Capture :mod:`repro.obs` trace events during execution and return
    #: them on the run's telemetry (set automatically by ``run_batch`` when
    #: an ``observe(trace=True)`` scope is active). Does not affect results.
    capture_trace: bool = False

    def with_(self, **kw) -> "RunSpec":
        """A copy with fields replaced."""
        return replace(self, **kw)

    @classmethod
    def from_config(cls, config, seed: Optional[int] = None) -> "RunSpec":
        """Lift a :class:`SimulationConfig` into a spec (drops any attached
        catalog — the runtime re-resolves catalogs through its cache)."""
        return cls(
            strategy=config.strategy,
            bidding=config.bidding,
            mechanism=config.mechanism,
            params=config.params,
            seed=config.seed if seed is None else seed,
            horizon_s=config.horizon_s,
            regions=tuple(config.regions),
            sizes=tuple(config.sizes),
            calibrations=config.calibrations,
            startup_cv=config.startup_cv,
            service_disk_gib=config.service_disk_gib,
            label=config.label,
            faults=getattr(config, "faults", None),
        )

    def to_config(self, catalog=None):
        """Materialise the :class:`SimulationConfig` for this run.

        The bidding policy is deep-copied so stateful policies (e.g.
        :class:`~repro.core.adaptive.AdaptiveBidding`'s per-market bid
        cache) never leak state between runs — each run sees exactly what
        it would have seen in its own process.
        """
        from repro.core.simulation import SimulationConfig

        return SimulationConfig(
            strategy=self.strategy,
            bidding=copy.deepcopy(self.bidding),
            mechanism=self.mechanism,
            params=self.params,
            seed=self.seed,
            horizon_s=self.horizon_s,
            regions=tuple(self.regions),
            sizes=tuple(self.sizes),
            catalog=catalog,
            calibrations=self.calibrations,
            startup_cv=self.startup_cv,
            service_disk_gib=self.service_disk_gib,
            label=self.label,
            faults=self.faults,
        )

    def catalog_key(self):
        """The trace-catalog cache key for this run, or ``None`` when the
        run is uncacheable (unhashable calibration overrides)."""
        from repro.runtime.cache import CatalogKey

        token: Optional[tuple] = None
        if self.calibrations is not None:
            try:
                token = tuple(sorted(self.calibrations.items()))
                hash(token)
            except TypeError:
                return None
        key = CatalogKey(
            seed=self.seed,
            horizon_s=float(self.horizon_s),
            regions=tuple(self.regions),
            sizes=tuple(self.sizes),
            calibration_token=token,
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def is_portable(self) -> bool:
        """Can this spec cross a process boundary?"""
        if not isinstance(self.strategy, StrategySpec):
            return False
        try:
            pickle.dumps(self)
        except Exception:
            return False
        return True

    def fingerprint(self) -> str:
        """Stable content hash (see :func:`spec_fingerprint`)."""
        return spec_fingerprint(self)


@dataclass(frozen=True)
class BatchSpec:
    """An ordered set of runs executed together (shared catalog cache)."""

    runs: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ConfigurationError("batch needs at least one run")

    @classmethod
    def product(cls, base: RunSpec, seeds: Sequence[int]) -> "BatchSpec":
        """One run per seed, mirroring ``run_many``'s fan-out."""
        if not len(seeds):
            raise ConfigurationError("need at least one seed")
        return cls(runs=tuple(base.with_(seed=s) for s in seeds))

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    def fingerprint(self) -> str:
        """Stable content hash (see :func:`batch_fingerprint`)."""
        return batch_fingerprint(self.runs)
