"""Per-process trace-catalog cache: build each price sample at most once.

The paper's methodology compares policies on *the same* price sample, and a
batch of N policies over S seeds needs only S catalog builds, not N×S. The
cache is a small LRU keyed by everything that determines a catalog's
contents (:class:`CatalogKey`); both the serial executor and every pool
worker hold one per process (:func:`shared_catalog_cache`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.traces.catalog import TraceCatalog, build_catalog

__all__ = ["CatalogKey", "TraceCatalogCache", "shared_catalog_cache"]

#: Default number of catalogs kept per process. A full 16-market, 30-day
#: catalog is a few MB; 32 comfortably covers one experiment's seed×market
#: working set.
DEFAULT_MAXSIZE = 32


@dataclass(frozen=True)
class CatalogKey:
    """Everything that determines a generated catalog's contents."""

    seed: int
    horizon_s: float
    regions: Tuple[str, ...]
    sizes: Tuple[str, ...]
    calibration_token: Optional[tuple] = None  #: sorted calibration overrides

    def build(self) -> TraceCatalog:
        """Generate the catalog this key describes."""
        calibrations = (
            dict(self.calibration_token) if self.calibration_token is not None else None
        )
        return build_catalog(
            seed=self.seed,
            horizon=self.horizon_s,
            regions=self.regions,
            sizes=self.sizes,
            calibrations=calibrations,
        )


class TraceCatalogCache:
    """An LRU of built catalogs with hit/miss/build counters."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize <= 0:
            raise ConfigurationError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CatalogKey, TraceCatalog]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_wall_s = 0.0

    def get_or_build(self, key: CatalogKey) -> Tuple[TraceCatalog, bool, float]:
        """The catalog for ``key``: ``(catalog, was_cached, build_seconds)``."""
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return cached, True, 0.0
        self.misses += 1
        t0 = time.perf_counter()
        catalog = key.build()
        wall = time.perf_counter() - t0
        self.builds += 1
        self.build_wall_s += wall
        self._entries[key] = catalog
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return catalog, False, wall

    def peek(self, key: CatalogKey) -> Optional[TraceCatalog]:
        """The cached catalog without building or touching LRU order."""
        return self._entries.get(key)

    def clear(self) -> None:
        """Drop entries and reset counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.build_wall_s = 0.0

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_wall_s": self.build_wall_s,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CatalogKey) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TraceCatalogCache size={len(self)}/{self.maxsize} "
            f"hits={self.hits} builds={self.builds}>"
        )


_SHARED: Optional[TraceCatalogCache] = None


def shared_catalog_cache() -> TraceCatalogCache:
    """This process's catalog cache (one per process, including workers)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = TraceCatalogCache()
    return _SHARED
