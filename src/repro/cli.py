"""``repro-simulate`` — run custom scheduler simulations from the shell.

Examples::

    repro-simulate                                    # paper defaults
    repro-simulate --bidding reactive --size large
    repro-simulate --strategy multi-market --region us-east-1b
    repro-simulate --strategy multi-region --region us-east-1a eu-west-1a
    repro-simulate --mechanism ckpt+lr --pessimistic --seeds 1 2 3
    repro-simulate --strategy pure-spot --days 60
    repro-simulate --strategy index-tracking --region us-east-1a us-west-1a
    repro-simulate --strategy portfolio-bid --risk-cap 0.02 --region us-east-1a
    repro-simulate --csv history.csv --size small --region us-east-1a
    repro-simulate --segments segments/ --size small --region us-east-1a
    repro-simulate --fast --trace /tmp/t.jsonl --metrics
    repro-simulate --list-strategies

Strategy choices are enumerated from :mod:`repro.core.registry`, so
out-of-tree families registered through the ``repro.strategies`` entry
point show up here automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.analysis.tables import Table
from repro.core import registry
from repro.core.bidding import ProactiveBidding, ReactiveBidding
from repro.core.results import aggregate
from repro.core.simulation import SimulationConfig, run_many, run_simulation_observed
from repro.obs import NULL_SINK, MemorySink, observe
from repro.runtime import StrategySpec
from repro.errors import TraceFormatError
from repro.traces.calibration import REGIONS, SIZES, on_demand_price
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.loader import load_aws_csv
from repro.units import days
from repro.vm.mechanisms import Mechanism, PESSIMISTIC_PARAMS, TYPICAL_PARAMS

__all__ = ["main", "build_parser"]

MECHANISMS = {m.value: m for m in Mechanism}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Host an always-on service on the simulated spot market.",
    )
    p.add_argument("--strategy", choices=registry.strategy_kinds(), default="single")
    p.add_argument("--list-strategies", action="store_true",
                   help="print every registered hosting strategy and exit")
    p.add_argument("--bidding", choices=("proactive", "reactive"), default="proactive")
    p.add_argument("--k", type=float, default=4.0, help="proactive bid multiplier")
    p.add_argument("--mechanism", choices=sorted(MECHANISMS), default="ckpt+lr+live")
    p.add_argument("--pessimistic", action="store_true",
                   help="use the pessimistic mechanism parameters")
    p.add_argument("--region", nargs="+", default=["us-east-1a"], choices=REGIONS,
                   metavar="AZ", help="availability zone(s)")
    p.add_argument("--size", choices=SIZES, default="small")
    p.add_argument("--units", type=int, default=8,
                   help="fleet size in small-equivalents (multi strategies)")
    p.add_argument("--seeds", type=int, nargs="+", default=[11, 23, 37])
    p.add_argument("--days", type=float, default=30.0)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the per-seed fan-out "
                   "(default 1 = serial; results are identical)")
    p.add_argument("--engine", choices=("auto", "event", "vector", "fused"),
                   default="auto",
                   help="execution engine: 'auto' (default) vectorizes and "
                   "fuses eligible seed batches, 'event'/'vector' force one "
                   "per-run engine, 'fused' forces cross-run fusion — "
                   "results are bit-identical every way")
    p.add_argument("--csv", type=str, default=None,
                   help="replay an AWS-format spot history instead of "
                   "generating traces (single-market strategies only)")
    p.add_argument("--segments", type=str, default=None, metavar="DIR",
                   help="replay an ingested mmap segment directory "
                   "(see repro.traces.ingest) instead of generating traces "
                   "(single-market strategies only)")
    p.add_argument("--ledger", metavar="PATH", default=None,
                   help="journal each completed seed to a crash-safe run "
                   "ledger at PATH (a directory gets one file per batch)")
    p.add_argument("--resume", action="store_true",
                   help="with --ledger: replay seeds already journaled and "
                   "run only the remainder (byte-identical results)")
    p.add_argument("--stability-weight", type=float, default=2.0)
    p.add_argument("--band", type=float, default=0.15,
                   help="index-tracking: tracking-error band above the index")
    p.add_argument("--risk-cap", type=float, default=0.05,
                   help="portfolio-bid: max predicted revocation risk")
    p.add_argument("--fast", action="store_true",
                   help="smoke run: horizon capped at 10 days, first two seeds")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a JSONL decision trace of every run to PATH "
                   "(inspect with 'repro-trace summarize PATH')")
    p.add_argument("--metrics", action="store_true",
                   help="print the merged run-metrics summary after the table")
    return p


def _single_market_kind(kind: str) -> bool:
    """Does this strategy pin itself to one market (a ``"market"`` arg)?"""
    info = registry.strategy_info(kind)
    return any(a.kind == "market" for a in info.arg_schema)


def _make_strategy(args) -> Tuple[StrategySpec, tuple]:
    """Returns (strategy spec, regions tuple), built from the registered
    arg schema — no per-strategy branching."""
    info = registry.strategy_info(args.strategy)
    wants_regions = any(a.kind == "regions" for a in info.arg_schema)
    regions = tuple(args.region) if wants_regions else (args.region[0],)
    spec_args: List[object] = []
    options = {}
    for spec in info.arg_schema:
        if spec.kind == "market":
            spec_args.append(MarketKey(args.region[0], args.size))
        elif spec.kind == "region":
            spec_args.append(args.region[0])
        elif spec.kind == "regions":
            spec_args.append(regions)
        elif spec.cli is not None:
            # Scalar knob surfaced as a flag; others keep their defaults.
            options[spec.name] = getattr(args, spec.cli)
    return StrategySpec.of(args.strategy, *spec_args, **options), regions


def _render_strategy_list() -> str:
    t = Table(
        headers=("kind", "name", "vector", "synth w", "summary"),
        title="registered hosting strategies (repro.core.registry)",
    )
    for info in registry.strategy_infos():
        t.add_row(
            info.kind,
            info.display_name,
            "yes" if info.vectorizable else "no",
            info.synthesis_weight,
            info.summary,
        )
    lines = [t.render(), ""]
    for info in registry.strategy_infos():
        if info.citation:
            lines.append(f"  {info.kind}: {info.citation}")
    return "\n".join(lines)


def _csv_catalog(args) -> TraceCatalog:
    trace = load_aws_csv(args.csv)
    key = MarketKey(args.region[0], args.size)
    od = on_demand_price(args.region[0], args.size)
    return TraceCatalog({key: trace}, {key: od}, trace.horizon)


def _segment_catalog(args) -> TraceCatalog:
    from repro.traces.ingest import load_segment_catalog

    catalog = load_segment_catalog(args.segments)
    key = MarketKey(args.region[0], args.size)
    if key not in catalog:
        raise TraceFormatError(
            f"market {key} not in segment directory {args.segments}; "
            f"available: {[str(k) for k in catalog.markets()]}"
        )
    # Restrict to the requested market so the single-market strategy sees
    # exactly the same catalog shape as the --csv path.
    return catalog.restricted([key])


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_strategies:
        print(_render_strategy_list())
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.resume and args.ledger is None:
        print("--resume needs --ledger PATH", file=sys.stderr)
        return 2
    if args.csv is not None and args.segments is not None:
        print("--csv and --segments are mutually exclusive", file=sys.stderr)
        return 2
    if args.ledger is not None and (args.csv is not None or args.segments is not None):
        # Replays are single in-process runs outside run_batch; there is
        # no batch to journal.
        print("--ledger does not apply to --csv/--segments replays", file=sys.stderr)
        return 2
    if args.fast:
        args.days = min(args.days, 10.0)
        args.seeds = args.seeds[:2]
    bidding = (
        ProactiveBidding(k=args.k) if args.bidding == "proactive" else ReactiveBidding()
    )
    strategy, regions = _make_strategy(args)
    catalog = None
    horizon = days(args.days)
    if args.csv is not None or args.segments is not None:
        flag = "--csv" if args.csv is not None else "--segments"
        if not _single_market_kind(args.strategy):
            print(f"{flag} supports single-market strategies only", file=sys.stderr)
            return 2
        catalog = _csv_catalog(args) if args.csv is not None else _segment_catalog(args)
        horizon = catalog.horizon

    cfg = SimulationConfig(
        strategy=strategy,
        bidding=bidding,
        mechanism=MECHANISMS[args.mechanism],
        params=PESSIMISTIC_PARAMS if args.pessimistic else TYPICAL_PARAMS,
        horizon_s=horizon,
        regions=regions,
        sizes=tuple(SIZES),
        catalog=catalog,
        label=f"{args.bidding}/{args.strategy}",
    )

    t = Table(
        headers=("seed", "norm cost %", "unavail %", "downtime (s)",
                 "forced", "planned+rev", "spot $", "od $"),
        title=f"{args.strategy} / {args.bidding} / {args.mechanism}"
        f"{' (pessimistic)' if args.pessimistic else ''} over {args.days:g} days",
    )
    want_trace = args.trace is not None
    with observe(trace=want_trace, metrics=args.metrics) as scope:
        if catalog is not None:
            # The CSV replay is a single in-process run that bypasses
            # run_batch, so capture its observability directly.
            sink = MemorySink() if want_trace else NULL_SINK
            # A single replay has no batch to route; a forced --engine
            # vector (or fused — one run has nothing to fuse with) changes
            # the stack (results are identical).
            one_engine = "vector" if args.engine in ("vector", "fused") else "event"
            observed = run_simulation_observed(cfg, sink=sink, engine=one_engine)
            results = [observed.result]
            scope.add_run(
                observed.result.label,
                cfg.seed,
                events=tuple(e.to_dict() for e in sink.events) if want_trace else None,
                metrics=observed.metrics.to_dict(),
                engine=observed.engine_kind,
            )
        else:
            results = run_many(
                cfg, args.seeds, jobs=args.jobs,
                ledger=args.ledger, resume=args.resume,
                engine=args.engine,
            )
    for r in results:
        t.add_row(
            r.seed, r.normalized_cost_percent, r.unavailability_percent,
            r.downtime_s, r.forced_migrations,
            r.planned_migrations + r.reverse_migrations, r.spot_cost, r.on_demand_cost,
        )
    print(t.render())
    if len(results) > 1:
        agg = aggregate(results)
        print(
            f"\nmean over {agg.n_runs} seeds: "
            f"{agg.normalized_cost_percent:.1f}% of baseline "
            f"(+-{agg.normalized_cost_std:.1f}), "
            f"{agg.unavailability_percent:.4f}% unavailable"
        )
        meets = agg.unavailability_percent <= 0.01
        print(f"four-nines target: {'met' if meets else 'MISSED'}")
    if want_trace:
        n = scope.write_jsonl(args.trace)
        print(f"\ntrace: {n} event(s) written to {args.trace}")
    if args.metrics:
        print("\nrun metrics (merged over all runs):")
        print(scope.metrics_summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
