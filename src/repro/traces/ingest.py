"""Bulk AWS-archive ingestion: streaming demux into mmap-compiled segments.

The paper seeds every experiment with real ``DescribeSpotPriceHistory``
archives spanning hundreds of (availability zone, instance type) markets.
:func:`repro.traces.loader.load_aws_csv` reads one market's CSV fully into
Python lists — fine for a single trace, hopeless for a multi-GB archive.
This module is the production path:

* :func:`ingest_archive` streams any number of CSV/gzip archives through
  :func:`~repro.traces.loader.iter_aws_rows`, demultiplexing records per
  market into binary spill files and flushing whenever the in-memory
  buffer reaches ``chunk_records`` rows — peak memory is bounded by the
  chunk size plus the largest *single* market, independent of how many
  markets or gigabytes the archive holds;
* each market is then compiled (sorted, duplicate timestamps dropped
  keep-last, rebased onto a common archive clock) into a **compiled
  segment file**: a versioned binary header followed by the contiguous
  little-endian float64 ``times``, ``prices`` and segment ``bounds``
  arrays a :class:`~repro.traces.compiled.CompiledTrace` needs;
* :func:`load_segment_catalog` memory-maps every segment back into a
  :class:`~repro.traces.catalog.TraceCatalog` without copying a byte —
  the stored bounds array is adopted by the compiled query plan, and the
  catalog's ``source`` attribute lets :mod:`repro.runtime.shm` fan the
  directory path out to workers instead of republishing trace bytes.

Query results over an mmap-loaded catalog are bit-identical to the
CSV→in-memory path (``tests/traces/test_ingest.py`` enforces this with
exact comparisons, and the golden corpus pins full simulation reports).

Segment file format (version 1, little-endian)::

    offset  size  field
    0       8     magic  b"REPROSEG"
    8       4     u32    format version (1)
    12      4     u32    header_bytes: file offset of the float payload
    16      8     u64    n: number of change points
    24      8     f64    horizon (seconds, trace frame)
    32      8     f64    on-demand price (USD/hour)
    40      4     u32    meta_len
    44      -     UTF-8 JSON {"region", "size", "instance_type"}
    ...     -     zero padding to an 8-byte boundary (= header_bytes)
    then    8n    f64[n]    times
    +8n     8n    f64[n]    prices
    +8n     8n+8  f64[n+1]  bounds (= times + [horizon])

Truncated files, wrong magic and unknown versions all raise a clean
:class:`~repro.errors.TraceFormatError` before any NumPy mapping happens.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, TextIO, Tuple

import numpy as np

from repro.errors import CalibrationError, TraceFormatError
from repro.traces.calibration import SIZES, on_demand_price
from repro.traces.catalog import MarketKey, TraceCatalog
from repro.traces.loader import _open_for_read, iter_aws_rows
from repro.traces.trace import PriceTrace

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "MANIFEST_NAME",
    "IngestReport",
    "write_segment",
    "read_segment",
    "ingest_archive",
    "load_segment_catalog",
]

SEGMENT_MAGIC = b"REPROSEG"
SEGMENT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Fixed-size header prefix: magic, version, header_bytes, n, horizon, od.
_FIXED = struct.Struct("<8sIIQdd")

#: Little-endian float64 — the on-disk dtype of every payload array.
_F8 = np.dtype("<f8")

#: Records buffered in memory before the demux flushes every market's
#: buffer to its spill file. ~32 MB of Python floats at the default.
DEFAULT_CHUNK_RECORDS = 200_000

#: Horizon padding past the last record of the archive (mirrors
#: :func:`~repro.traces.loader.load_aws_csv`'s one-hour default).
DEFAULT_HORIZON_PAD_S = 3600.0

#: On-demand heuristic when a market is not in the calibration tables and
#: no explicit price was supplied: the paper's 4x bid-cap anchor over the
#: market's median observed spot price.
DEFAULT_OD_MULTIPLE = 4.0


# ----------------------------------------------------------- segment files
def write_segment(path: str | Path, trace: PriceTrace, on_demand: float) -> int:
    """Write one market's compiled segment file; returns bytes written."""
    if on_demand <= 0:
        raise TraceFormatError(f"on-demand price must be positive, got {on_demand}")
    path = Path(path)
    n = len(trace)
    meta = json.dumps(
        {"region": trace.region, "size": trace.market, "instance_type": trace.market},
        sort_keys=True,
    ).encode("utf-8")
    raw_header = _FIXED.size + 4 + len(meta)
    header_bytes = (raw_header + 7) & ~7  # pad to an 8-byte boundary
    times = np.ascontiguousarray(trace.times, dtype=_F8)
    prices = np.ascontiguousarray(trace.prices, dtype=_F8)
    bounds = np.concatenate([times, [trace.horizon]]).astype(_F8, copy=False)
    with open(path, "wb") as fh:
        fh.write(
            _FIXED.pack(
                SEGMENT_MAGIC, SEGMENT_VERSION, header_bytes, n, trace.horizon, float(on_demand)
            )
        )
        fh.write(struct.pack("<I", len(meta)))
        fh.write(meta)
        fh.write(b"\x00" * (header_bytes - raw_header))
        fh.write(times.tobytes())
        fh.write(prices.tobytes())
        fh.write(bounds.tobytes())
    return header_bytes + (3 * n + 1) * 8


def read_segment(path: str | Path) -> Tuple[PriceTrace, float]:
    """Memory-map one compiled segment file back into a trace.

    Returns ``(trace, on_demand_price)``. The trace's ``times``/``prices``
    and its compiled plan's ``bounds`` are read-only views over the mapped
    file — no float is copied, and pages load lazily on first query.

    Raises
    ------
    TraceFormatError
        On wrong magic, an unknown format version, a truncated or
        size-inconsistent file, or corrupt header metadata.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise TraceFormatError(f"cannot stat segment file {path}: {exc}") from exc
    with open(path, "rb") as fh:
        head = fh.read(_FIXED.size)
        if len(head) < _FIXED.size:
            raise TraceFormatError(f"{path.name}: truncated segment header")
        magic, version, header_bytes, n, horizon, od = _FIXED.unpack(head)
        if magic != SEGMENT_MAGIC:
            raise TraceFormatError(f"{path.name}: bad magic {magic!r}; not a segment file")
        if version != SEGMENT_VERSION:
            raise TraceFormatError(
                f"{path.name}: unsupported segment version {version} (want {SEGMENT_VERSION})"
            )
        meta_raw = fh.read(4)
        if len(meta_raw) < 4:
            raise TraceFormatError(f"{path.name}: truncated segment header")
        (meta_len,) = struct.unpack("<I", meta_raw)
        if _FIXED.size + 4 + meta_len > header_bytes or header_bytes > size:
            raise TraceFormatError(f"{path.name}: header_bytes inconsistent with metadata")
        meta_bytes = fh.read(meta_len)
        if len(meta_bytes) < meta_len:
            raise TraceFormatError(f"{path.name}: truncated segment header")
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path.name}: corrupt segment metadata") from exc
    if n < 1:
        raise TraceFormatError(f"{path.name}: segment must contain at least one point")
    expected = header_bytes + (3 * n + 1) * 8
    if size != expected:
        raise TraceFormatError(
            f"{path.name}: expected {expected} bytes for n={n}, found {size} (truncated?)"
        )
    payload = np.memmap(path, dtype=_F8, mode="r", offset=header_bytes, shape=(3 * n + 1,))
    times = payload[:n]
    prices = payload[n : 2 * n]
    bounds = payload[2 * n :]
    trace = PriceTrace(
        times,
        prices,
        horizon,
        market=str(meta.get("size", "")),
        region=str(meta.get("region", "")),
        bounds=bounds,
    )
    return trace, float(od)


# ------------------------------------------------------------------ ingest
@dataclass(frozen=True)
class IngestReport:
    """Summary of one :func:`ingest_archive` run."""

    out_dir: str
    n_markets: int
    n_records: int
    duplicates_dropped: int
    horizon: float
    epoch_offset: float  #: epoch seconds subtracted from every timestamp
    peak_buffered_records: int
    markets: Tuple[Tuple[str, str], ...]  #: (region, size) catalog keys


def _size_key(instance_type: str) -> str:
    """Catalog size key of an instance type (``m1.small`` -> ``small``)."""
    suffix = instance_type.rsplit(".", 1)[-1]
    return suffix if suffix in SIZES else instance_type


def _resolve_od(
    az: str,
    itype: str,
    size: str,
    prices: np.ndarray,
    od_prices: Optional[Mapping],
) -> float:
    """On-demand price: explicit mapping, calibration table, then heuristic."""
    if od_prices:
        for key in ((az, itype), itype, (az, size), size):
            if key in od_prices:
                return float(od_prices[key])
    try:
        return on_demand_price(az, size)
    except CalibrationError:
        return DEFAULT_OD_MULTIPLE * float(np.median(prices))


def ingest_archive(
    sources: Iterable[str | Path | TextIO] | str | Path | TextIO,
    out_dir: str | Path,
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    horizon: Optional[float] = None,
    horizon_pad_s: float = DEFAULT_HORIZON_PAD_S,
    od_prices: Optional[Mapping] = None,
    rebase_to_zero: bool = True,
) -> IngestReport:
    """Stream multi-market AWS archives into a compiled segment directory.

    Parameters
    ----------
    sources:
        One or more archive paths (plain or gzip CSV) or open text streams.
    out_dir:
        Destination directory; created if needed. Receives one ``.seg``
        file per (availability zone, instance type) market plus a
        ``manifest.json`` describing the catalog.
    chunk_records:
        Records buffered in memory before every market buffer is flushed
        to its spill file — the knob that bounds peak demux memory.
    horizon:
        Catalog horizon in the compiled trace frame. Defaults to the span
        of the archive plus ``horizon_pad_s``; must be strictly past the
        last (rebased) record.
    od_prices:
        Optional on-demand price overrides, keyed by ``(az, instance
        type)``, instance type, ``(az, size)`` or size. Markets absent
        here fall back to the calibration tables when the (az, size) pair
        is known, else to ``DEFAULT_OD_MULTIPLE`` times the market's
        median observed price.
    rebase_to_zero:
        Shift every market onto a common clock starting at the archive's
        first record (what the simulator expects). All markets share one
        offset, so cross-market alignment is preserved exactly.

    Memory guarantee: the demux pass holds at most ``chunk_records``
    buffered rows; the compile pass materialises one market at a time.
    Peak usage is therefore independent of the archive's total size and
    market count (asserted in ``tests/traces/test_ingest.py``).
    """
    if chunk_records < 1:
        raise TraceFormatError("chunk_records must be >= 1")
    if isinstance(sources, (str, Path)) or hasattr(sources, "read"):
        sources = [sources]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    spill_dir = out / ".spill"
    spill_dir.mkdir(exist_ok=True)

    buffers: Dict[Tuple[str, str], List[float]] = {}
    spill_ids: Dict[Tuple[str, str], int] = {}
    counts: Dict[Tuple[str, str], int] = {}
    buffered = 0
    peak_buffered = 0
    total = 0
    t_min = np.inf
    t_max = -np.inf

    def _spill_path(key: Tuple[str, str]) -> Path:
        sid = spill_ids.setdefault(key, len(spill_ids))
        return spill_dir / f"{sid}.bin"

    def _flush() -> None:
        nonlocal buffered
        for key, buf in buffers.items():
            if not buf:
                continue
            with open(_spill_path(key), "ab") as fh:
                fh.write(np.asarray(buf, dtype=_F8).tobytes())
            buf.clear()
        buffered = 0

    try:
        for source in sources:
            fh, should_close = _open_for_read(source)
            try:
                for t, itype, az, price in iter_aws_rows(fh):
                    key = (az, itype)
                    buffers.setdefault(key, []).extend((t, price))
                    counts[key] = counts.get(key, 0) + 1
                    buffered += 1
                    total += 1
                    if t < t_min:
                        t_min = t
                    if t > t_max:
                        t_max = t
                    if buffered >= chunk_records:
                        peak_buffered = max(peak_buffered, buffered)
                        _flush()
            finally:
                if should_close:
                    fh.close()
        peak_buffered = max(peak_buffered, buffered)
        _flush()

        if not counts:
            raise TraceFormatError("archive contains no records")

        offset = float(t_min) if rebase_to_zero else 0.0
        span_end = float(t_max) - offset
        final_horizon = span_end + horizon_pad_s if horizon is None else float(horizon)
        if final_horizon <= span_end:
            raise TraceFormatError(
                f"horizon {final_horizon} is not after the archive's last "
                f"(rebased) record at {span_end}"
            )

        # Catalog size keys: the instance type's suffix when unambiguous
        # within its zone (m1.small -> small), else the full type name.
        raw_sizes = {key: _size_key(key[1]) for key in counts}
        collisions = {}
        for (az, itype), sz in raw_sizes.items():
            collisions.setdefault((az, sz), []).append(itype)
        size_of = {
            key: (sz if len(collisions[(key[0], sz)]) == 1 else key[1])
            for key, sz in raw_sizes.items()
        }

        dup_dropped = 0
        manifest_markets = []
        catalog_keys: List[Tuple[str, str]] = []
        for key in sorted(counts):
            az, itype = key
            data = np.fromfile(_spill_path(key), dtype=_F8).reshape(-1, 2)
            order = np.argsort(data[:, 0], kind="stable")
            times = data[order, 0]
            prices = data[order, 1]
            keep = np.concatenate([np.diff(times) > 0, [True]])
            dup_dropped += int(times.shape[0] - keep.sum())
            times, prices = times[keep], prices[keep]
            times = times - offset
            size = size_of[key]
            od = _resolve_od(az, itype, size, prices, od_prices)
            trace = PriceTrace(times, prices, final_horizon, market=itype, region=az)
            fname = f"{az}__{itype}.seg"
            write_segment(out / fname, trace, od)
            _spill_path(key).unlink()
            manifest_markets.append(
                {
                    "region": az,
                    "size": size,
                    "instance_type": itype,
                    "file": fname,
                    "n": len(trace),
                    "on_demand": od,
                }
            )
            catalog_keys.append((az, size))
    finally:
        for leftover in spill_dir.glob("*.bin"):
            leftover.unlink()
        try:
            spill_dir.rmdir()
        except OSError:  # pragma: no cover - non-empty on a hard failure
            pass

    manifest = {
        "format": "repro-segment-dir",
        "version": SEGMENT_VERSION,
        "horizon": final_horizon,
        "epoch_offset": offset,
        "records": total,
        "duplicates_dropped": dup_dropped,
        "markets": manifest_markets,
    }
    (out / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return IngestReport(
        out_dir=str(out),
        n_markets=len(manifest_markets),
        n_records=total,
        duplicates_dropped=dup_dropped,
        horizon=final_horizon,
        epoch_offset=offset,
        peak_buffered_records=peak_buffered,
        markets=tuple(catalog_keys),
    )


def load_segment_catalog(segment_dir: str | Path) -> TraceCatalog:
    """Memory-map an ingested segment directory into a trace catalog.

    Every trace's arrays (and its compiled plan's bounds) are zero-copy
    views over the segment files; the returned catalog carries the
    directory as its ``source`` so the shared-memory executor path can
    ship the path instead of the bytes.
    """
    seg_dir = Path(segment_dir)
    manifest_path = seg_dir / MANIFEST_NAME
    if not manifest_path.exists():
        raise TraceFormatError(f"no {MANIFEST_NAME} in {seg_dir}; not a segment directory")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"corrupt {manifest_path}") from exc
    if manifest.get("format") != "repro-segment-dir":
        raise TraceFormatError(f"{manifest_path}: not a segment-directory manifest")
    if manifest.get("version") != SEGMENT_VERSION:
        raise TraceFormatError(
            f"{manifest_path}: unsupported manifest version {manifest.get('version')!r}"
        )
    horizon = float(manifest["horizon"])
    traces: Dict[MarketKey, PriceTrace] = {}
    od: Dict[MarketKey, float] = {}
    for entry in manifest.get("markets", []):
        key = MarketKey(region=str(entry["region"]), size=str(entry["size"]))
        trace, seg_od = read_segment(seg_dir / str(entry["file"]))
        if trace.horizon != horizon:
            raise TraceFormatError(
                f"{entry['file']}: horizon {trace.horizon} != manifest horizon {horizon}"
            )
        traces[key] = trace
        od[key] = seg_od
    if not traces:
        raise TraceFormatError(f"{manifest_path}: manifest lists no markets")
    return TraceCatalog(traces, od, horizon, source=str(seg_dir.resolve()))


# --------------------------------------------------------------- module CLI
def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin
    """``python -m repro.traces.ingest ARCHIVE [ARCHIVE...] -o DIR``."""
    import argparse

    p = argparse.ArgumentParser(
        prog="python -m repro.traces.ingest",
        description="Ingest AWS spot-price archives into mmap-compiled segments.",
    )
    p.add_argument("archives", nargs="+", help="CSV or gzip archive paths")
    p.add_argument("-o", "--out", required=True, help="segment output directory")
    p.add_argument("--chunk-records", type=int, default=DEFAULT_CHUNK_RECORDS)
    args = p.parse_args(argv)
    report = ingest_archive(args.archives, args.out, chunk_records=args.chunk_records)
    print(
        f"ingested {report.n_records} records into {report.n_markets} market "
        f"segment(s) under {report.out_dir} "
        f"(horizon {report.horizon:.0f}s, {report.duplicates_dropped} duplicate(s) dropped)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
