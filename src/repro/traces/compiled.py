"""The compiled query plan of a :class:`~repro.traces.trace.PriceTrace`.

Every scheduler decision in the proactive-bidding loop is a price-trace
interrogation — "when does the price next cross my bid?", "what fraction
of this window sat above on-demand?". The naive answers are O(n) per
call: :meth:`PriceTrace.naive_first_time_above` rebuilds the full
crossing mask, and the window aggregates re-concatenate and re-clip the
whole bounds array even for a one-hour window.

A :class:`CompiledTrace` is the one-time "query compilation" of a trace:

* the segment **bounds** array (``times`` + ``horizon``) is materialised
  once, so window aggregates become two ``searchsorted``\\ s plus
  arithmetic over just the covered segments (O(log n + w) for a
  w-segment window instead of O(n));
* ``times``/``prices`` are mirrored as plain Python lists so scalar
  ``price_at`` lookups run through :func:`bisect.bisect_right` without
  NumPy scalar-boxing overhead;
* crossing tables are **memoized per threshold**. The thresholds a run
  queries form a tiny set — the user bid, the on-demand price, the bid
  cap — so ``first_time_above`` / ``first_time_at_or_below`` and the
  crossing-attribution lookups become O(log n) bisects into tables built
  once per (trace, threshold).

Exactness is a hard contract, not an aspiration: every query here
returns the **bit-identical** float the naive implementation returns,
because the arithmetic is performed on the very same clipped segment
values in the same order (the compiled plan only narrows *which*
segments participate, which the naive mask would have discarded anyway).
``tests/props/test_compiled_equivalence.py`` enforces this with exact
``==`` over random traces, windows and thresholds, and the golden
scenario corpus pins it end to end.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TraceFormatError

__all__ = ["CompiledTrace"]


class CompiledTrace:
    """Precomputed index structures over one immutable price step function.

    Parameters
    ----------
    times, prices:
        The owning trace's (already validated, read-only) arrays.
    horizon:
        End of the trace's validity window.

    Instances are created lazily by :attr:`PriceTrace.compiled` and
    shared for the trace's lifetime; all state is derived and immutable.
    """

    __slots__ = (
        "times",
        "prices",
        "horizon",
        "bounds",
        "_n",
        "_times_list",
        "_prices_list",
        "_above",
        "_below",
        "_rolling",
    )

    def __init__(
        self,
        times: np.ndarray,
        prices: np.ndarray,
        horizon: float,
        bounds: Optional[np.ndarray] = None,
    ) -> None:
        self.times = times
        self.prices = prices
        self.horizon = float(horizon)
        if bounds is None:
            bounds = np.concatenate([times, [horizon]])
            bounds.setflags(write=False)
        else:
            # A precomputed bounds array (e.g. the memory-mapped one inside a
            # compiled segment file) must be exactly ``times + [horizon]`` —
            # spot-check the seams instead of materialising a full compare,
            # so an mmap-backed plan stays lazy.
            if (
                bounds.shape != (times.shape[0] + 1,)
                or float(bounds[0]) != float(times[0])
                or float(bounds[-1]) != self.horizon
                or float(bounds[times.shape[0] - 1]) != float(times[-1])
            ):
                raise TraceFormatError("precomputed bounds do not match times/horizon")
        self.bounds = bounds
        self._n = int(times.shape[0])
        self._times_list = times.tolist()
        self._prices_list = prices.tolist()
        self._above: Dict[float, np.ndarray] = {}
        self._below: Dict[float, np.ndarray] = {}
        self._rolling: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------- scalar lookup
    def index_at(self, t: float) -> int:
        """Index of the segment in force at scalar time ``t`` (clamped)."""
        idx = bisect_right(self._times_list, t) - 1
        if idx < 0:
            return 0
        return idx

    def price_at(self, t: float) -> float:
        """Price in force at scalar time ``t`` (same clamping as the trace)."""
        return self._prices_list[self.index_at(t)]

    def next_change_after(self, t: float) -> Optional[float]:
        """First change time strictly after ``t``, or ``None``."""
        idx = bisect_right(self._times_list, t)
        if idx >= self._n:
            return None
        return self._times_list[idx]

    # ------------------------------------------------------------ window slicing
    def window_bounds(self, t0: float, t1: float) -> Tuple[int, int]:
        """Segment index range ``[first, last)`` overlapping ``[t0, t1)``.

        ``first`` is the segment containing ``t0`` (or 0 when ``t0``
        precedes the trace start); ``last`` counts segments starting
        before ``t1``. Degenerate windows collapse to an empty range.
        """
        first = bisect_right(self._times_list, t0) - 1
        if first < 0:
            first = 0
        last = bisect_left(self._times_list, t1)
        if last < first:
            last = first
        return first, last

    def window(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Clipped ``(durations, prices)`` of the segments in ``[t0, t1)``.

        Bit-for-bit the arrays :meth:`PriceTrace._segment_durations`
        produces. By construction of :meth:`window_bounds`, interior
        bounds already lie inside ``[t0, t1]`` — the naive full-array
        ``np.clip`` only ever moves the two endpoint bounds, so two
        scalar adjustments replace it. Where the endpoint-only adjustment
        could differ from a true clip (inverted/degenerate windows, the
        window entirely off-trace) the segment's duration is non-positive
        under both, so the ``dur > 0`` mask discards it identically.
        """
        first, last = self.window_bounds(t0, t1)
        lo = self.bounds[first:last].copy()
        hi = self.bounds[first + 1 : last + 1].copy()
        if lo.shape[0]:
            if lo[0] < t0:
                lo[0] = t0
            if hi[-1] > t1:
                hi[-1] = t1
        dur = hi - lo
        mask = dur > 0
        return dur[mask], self.prices[first:last][mask]

    def _resolve(self, t0: Optional[float], t1: Optional[float]) -> Tuple[float, float]:
        a = float(self.times[0]) if t0 is None else t0
        b = self.horizon if t1 is None else t1
        return a, b

    # -------------------------------------------------------------- aggregates
    def mean_price(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Time-weighted mean price over ``[t0, t1)`` (default whole trace)."""
        a, b = self._resolve(t0, t1)
        dur, prices = self.window(a, b)
        total = dur.sum()
        if total <= 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(np.dot(dur, prices) / total)

    def price_std(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Time-weighted price standard deviation over the window."""
        a, b = self._resolve(t0, t1)
        dur, prices = self.window(a, b)
        total = dur.sum()
        if total <= 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        mean = np.dot(dur, prices) / total
        var = np.dot(dur, (prices - mean) ** 2) / total
        return float(np.sqrt(max(var, 0.0)))

    # ----------------------------------------------------- rolling-std table
    def _rolling_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Prefix sums of ``d``, ``d*p`` and ``d*p**2`` over the segments.

        ``c_k[i]`` is the cumulative k-th price moment (time-weighted) up
        to ``bounds[i]``; built once, read-only, shared by every
        :meth:`rolling_std` call on this trace.
        """
        cached = self._rolling
        if cached is None:
            d = np.diff(self.bounds)
            p = self.prices
            zero = np.zeros(1)
            c0 = np.concatenate([zero, np.cumsum(d)])
            c1 = np.concatenate([zero, np.cumsum(d * p)])
            c2 = np.concatenate([zero, np.cumsum(d * p * p)])
            for c in (c0, c1, c2):
                c.setflags(write=False)
            cached = self._rolling = (c0, c1, c2)
        return cached

    def _cum_moments(self, t: np.ndarray, k: np.ndarray) -> Tuple[np.ndarray, ...]:
        c0, c1, c2 = self._rolling_tables()
        b = self.bounds[k]
        p = self.prices[k]
        frac = t - b
        return (
            c0[k] + frac,
            c1[k] + frac * p,
            c2[k] + frac * p * p,
        )

    def rolling_std(self, t0: np.ndarray, t1: np.ndarray) -> np.ndarray:
        """Time-weighted price std over many ``[t0, t1)`` windows at once.

        **Approximate**, unlike every other query here: the prefix-sum
        difference form (``E[p^2] - E[p]^2``) accumulates rounding the
        exact per-window :meth:`price_std` (clipped-segment dot products)
        does not. The absolute error is bounded by a few units of
        ``n * eps * p_max^2 * (horizon / window)`` in the variance —
        callers needing a sound lower bound on the exact std must
        subtract a slack proportional to the trace's price scale (see
        ``StabilityAwareStrategy.vector_od_adjustment_floor``). Windows
        narrower than one segment and degenerate ``t1 <= t0`` windows
        return 0.
        """
        t0 = np.clip(np.asarray(t0, dtype=np.float64), self.bounds[0], self.horizon)
        t1 = np.clip(np.asarray(t1, dtype=np.float64), self.bounds[0], self.horizon)
        k0 = np.clip(
            np.searchsorted(self.bounds, t0, side="right") - 1, 0, self._n - 1
        )
        k1 = np.clip(
            np.searchsorted(self.bounds, t1, side="right") - 1, 0, self._n - 1
        )
        a0, a1, a2 = self._cum_moments(t0, k0)
        b0, b1, b2 = self._cum_moments(t1, k1)
        total = b0 - a0
        safe = np.maximum(total, 1e-9)
        mean = (b1 - a1) / safe
        var = (b2 - a2) / safe - mean * mean
        std = np.sqrt(np.maximum(var, 0.0))
        std[total <= 0.0] = 0.0
        return std

    def time_above(
        self, threshold: float, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> float:
        """Seconds in the window during which price > ``threshold``."""
        a, b = self._resolve(t0, t1)
        dur, prices = self.window(a, b)
        return float(dur[prices > threshold].sum())

    def max_price(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Maximum price attained in the window."""
        a, b = self._resolve(t0, t1)
        dur, prices = self.window(a, b)
        if prices.size == 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(prices.max())

    def min_price(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Minimum price attained in the window."""
        a, b = self._resolve(t0, t1)
        dur, prices = self.window(a, b)
        if prices.size == 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(prices.min())

    # ---------------------------------------------------------- crossing tables
    def crossings_above(self, threshold: float) -> np.ndarray:
        """Rising crossings of ``threshold``, computed once per threshold.

        Same construction as the naive scan (trace-start counts as a
        crossing when the trace opens above the threshold); the result is
        cached read-only and shared by every later query at this
        threshold.
        """
        cached = self._above.get(threshold)
        if cached is None:
            above = self.prices > threshold
            rising = np.flatnonzero(above[1:] & ~above[:-1]) + 1
            cached = self.times[rising]
            if above[0]:
                cached = np.concatenate([[self.times[0]], cached])
            cached.setflags(write=False)
            self._above[threshold] = cached
        return cached

    def crossings_below(self, threshold: float) -> np.ndarray:
        """Falling crossings of ``threshold``, memoized like the rising set."""
        cached = self._below.get(threshold)
        if cached is None:
            above = self.prices > threshold
            falling = np.flatnonzero(~above[1:] & above[:-1]) + 1
            cached = self.times[falling]
            cached.setflags(write=False)
            self._below[threshold] = cached
        return cached

    def first_time_above(self, threshold: float, from_t: float) -> Optional[float]:
        """Earliest time >= ``from_t`` with price > ``threshold``, or ``None``."""
        if from_t >= self.horizon:
            return None
        if self.price_at(from_t) > threshold:
            start = self._times_list[0]
            return from_t if from_t > start else start
        cross = self.crossings_above(threshold)
        idx = int(np.searchsorted(cross, from_t, side="right"))
        if idx >= cross.shape[0]:
            return None
        return float(cross[idx])

    def first_time_at_or_below(self, threshold: float, from_t: float) -> Optional[float]:
        """Earliest time >= ``from_t`` with price <= ``threshold``, or ``None``."""
        if from_t >= self.horizon:
            return None
        if self.price_at(from_t) <= threshold:
            start = self._times_list[0]
            return from_t if from_t > start else start
        cross = self.crossings_below(threshold)
        idx = int(np.searchsorted(cross, from_t, side="right"))
        if idx >= cross.shape[0]:
            return None
        return float(cross[idx])

    def last_crossing_above_at_or_before(
        self, threshold: float, at: float
    ) -> Optional[float]:
        """Most recent rising crossing of ``threshold`` at or before ``at``."""
        cross = self.crossings_above(threshold)
        idx = int(np.searchsorted(cross, at, side="right"))
        if idx == 0:
            return None
        return float(cross[idx - 1])

    def last_crossing_below_at_or_before(
        self, threshold: float, at: float
    ) -> Optional[float]:
        """Most recent falling crossing of ``threshold`` at or before ``at``."""
        cross = self.crossings_below(threshold)
        idx = int(np.searchsorted(cross, at, side="right"))
        if idx == 0:
            return None
        return float(cross[idx - 1])

    # -------------------------------------------------------------- statistics
    def cached_thresholds(self) -> Tuple[int, int]:
        """(rising, falling) table counts — introspection for tests/benchmarks."""
        return len(self._above), len(self._below)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompiledTrace n={self._n} horizon={self.horizon:.0f}s "
            f"thresholds={len(self._above)}+{len(self._below)}>"
        )
