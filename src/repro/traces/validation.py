"""Validating price traces against the calibrated statistical structure.

Whether a trace was synthesised or loaded from an AWS archive, the
scheduler's results only transfer if the trace has the structure the
calibration encodes — calm level far below on-demand, an excursion process
of roughly the expected intensity, sharp spikes that actually cross the
bid cap. :func:`validate_trace` checks one trace against one
:class:`~repro.traces.calibration.MarketCalibration` and returns a
structured report of per-property checks with observed vs expected values.

Tolerances are deliberately loose (a single month of one market is a small
sample of a bursty process): the point is to catch *category* errors — a
trace in the wrong units, a mislabeled market, a calm level above
on-demand — not to re-estimate parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.traces.calibration import MarketCalibration
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = ["ValidationCheck", "ValidationReport", "validate_trace"]


@dataclass(frozen=True)
class ValidationCheck:
    """One property check."""

    name: str
    observed: float
    expected_lo: float
    expected_hi: float

    @property
    def ok(self) -> bool:
        return self.expected_lo <= self.observed <= self.expected_hi

    def describe(self) -> str:
        flag = "ok " if self.ok else "FAIL"
        return (
            f"[{flag}] {self.name}: observed {self.observed:.4g} "
            f"(expected {self.expected_lo:.4g} .. {self.expected_hi:.4g})"
        )


@dataclass(frozen=True)
class ValidationReport:
    """All checks for one trace/calibration pair."""

    market: str
    checks: tuple

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[ValidationCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        head = f"validation of {self.market}: {'PASS' if self.ok else 'FAIL'}"
        return "\n".join([head] + ["  " + c.describe() for c in self.checks])


def validate_trace(
    trace: PriceTrace,
    cal: MarketCalibration,
    *,
    level_tolerance: float = 2.0,
    rate_tolerance: float = 3.0,
) -> ValidationReport:
    """Check a trace against a calibration's statistical promises.

    ``level_tolerance`` multiplies the allowed band around price levels;
    ``rate_tolerance`` multiplies the band around event rates (rates are
    noisier on monthly samples).
    """
    od = cal.on_demand
    hours = trace.duration / SECONDS_PER_HOUR
    checks: List[ValidationCheck] = []

    calm_expected = cal.calm_base_frac * od
    checks.append(
        ValidationCheck(
            "calm price level ($/hr)",
            trace.mean_price(),
            calm_expected / level_tolerance,
            calm_expected * level_tolerance,
        )
    )
    checks.append(
        ValidationCheck(
            "minimum price above floor ($/hr)",
            trace.min_price(),
            cal.price_floor_frac * od * 0.99,
            od,  # a trace that never goes below on-demand is suspect
        )
    )
    # Rate lower bounds must respect Poisson sampling noise: when the
    # window only holds a handful of expected events, observing few (or
    # none) is unremarkable, so the lower bound opens to zero.
    def _rate_lo(rate_expected: float) -> float:
        if rate_expected * hours < 10.0:
            return 0.0
        return rate_expected / rate_tolerance

    frac_expected = cal.expected_time_above_od_fraction()
    # The above-od *fraction* is dominated by a few heavy-tailed excursion
    # durations, so its lower bound needs an even larger event count than
    # the rate checks before it means anything.
    frac_lo = (
        frac_expected / (2.0 * rate_tolerance)
        if cal.expected_excursion_rate() * hours >= 20.0
        else 0.0
    )
    checks.append(
        ValidationCheck(
            "fraction of time above on-demand",
            trace.time_above(od) / trace.duration,
            frac_lo,
            frac_expected * rate_tolerance if frac_expected > 0 else 1e-3,
        )
    )
    excursion_rate = len(trace.crossings_above(od)) / hours
    rate_expected = cal.expected_excursion_rate()
    checks.append(
        ValidationCheck(
            "excursions above on-demand (per hour)",
            excursion_rate,
            _rate_lo(rate_expected),
            rate_expected * rate_tolerance if rate_expected > 0 else 1e-3,
        )
    )
    sharp_rate = len(trace.crossings_above(4.0 * od)) / hours
    sharp_expected = cal.sharp_spikes.rate_per_hour
    checks.append(
        ValidationCheck(
            "sharp spikes past the bid cap (per hour)",
            sharp_rate,
            0.0,
            max(sharp_expected * rate_tolerance * 2.0, 3.0 / hours),
        )
    )
    checks.append(
        ValidationCheck(
            "re-pricing rate (changes per hour)",
            len(trace) / hours,
            cal.calm_change_rate_per_hour / level_tolerance,
            # excursions add their own steps on top of calm re-pricing
            cal.calm_change_rate_per_hour * level_tolerance + 2.0,
        )
    )
    label = f"{trace.region or cal.region}/{trace.market or cal.size}"
    return ValidationReport(market=label, checks=tuple(checks))
