"""The trace catalog: one generated trace per (region, size) market.

A :class:`TraceCatalog` is the simulation's price oracle. Experiments build
one per seed ("we sampled the empirically observed distributions and used a
different sample for each simulation run" — Section 4.1) and hand it to the
scheduler via :class:`repro.cloud.provider.CloudProvider`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import CalibrationError
from repro.simulator.rng import RngStreams
from repro.traces.calibration import (
    REGIONS,
    SIZES,
    MarketCalibration,
    calibration_for,
    on_demand_price,
)
from repro.traces.generator import TraceGenerator
from repro.traces.trace import PriceTrace

__all__ = ["MarketKey", "TraceCatalog", "build_catalog"]


@dataclass(frozen=True, order=True)
class MarketKey:
    """Identifies one spot market: an availability zone plus instance size."""

    region: str
    size: str

    def __post_init__(self) -> None:
        # Keys index every hot-path memo (markets, leads, spend, strategy
        # caches); precompute the hash once instead of per lookup.
        object.__setattr__(self, "_hash", hash((self.region, self.size)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.region}/{self.size}"


class TraceCatalog:
    """Immutable mapping from :class:`MarketKey` to :class:`PriceTrace`.

    Also carries each market's on-demand price so downstream code never
    needs the calibration tables.
    """

    def __init__(
        self,
        traces: Mapping[MarketKey, PriceTrace],
        on_demand: Mapping[MarketKey, float],
        horizon: float,
        source: str | None = None,
    ) -> None:
        if not traces:
            raise CalibrationError("catalog must contain at least one market")
        missing = set(traces) - set(on_demand)
        if missing:
            raise CalibrationError(f"missing on-demand prices for {sorted(map(str, missing))}")
        for key, trace in traces.items():
            if trace.horizon != horizon:
                raise CalibrationError(
                    f"trace {key} horizon {trace.horizon} != catalog horizon {horizon}"
                )
        self._traces = dict(traces)
        self._on_demand = {k: float(v) for k, v in on_demand.items()}
        self.horizon = float(horizon)
        #: When the catalog was loaded from an ingested segment directory
        #: (:func:`repro.traces.ingest.load_segment_catalog`), the directory
        #: path — the shared-memory fan-out ships this path instead of
        #: copying trace bytes, and every worker mmaps the same files.
        self.source = source

    # ----------------------------------------------------------------- access
    def trace(self, key: MarketKey) -> PriceTrace:
        """The price trace of one market."""
        try:
            return self._traces[key]
        except KeyError as exc:
            raise CalibrationError(f"market {key} not in catalog") from exc

    def on_demand_price(self, key: MarketKey) -> float:
        """On-demand hourly price of the market's instance size in its region."""
        try:
            return self._on_demand[key]
        except KeyError as exc:
            raise CalibrationError(f"market {key} not in catalog") from exc

    def markets(self) -> list[MarketKey]:
        """All market keys, sorted for determinism."""
        return sorted(self._traces)

    def markets_in_region(self, region: str) -> list[MarketKey]:
        """Markets belonging to one availability zone."""
        return [k for k in self.markets() if k.region == region]

    def regions(self) -> list[str]:
        """Distinct regions present, sorted."""
        return sorted({k.region for k in self._traces})

    def __contains__(self, key: MarketKey) -> bool:
        return key in self._traces

    def __iter__(self) -> Iterator[MarketKey]:
        return iter(self.markets())

    def __len__(self) -> int:
        return len(self._traces)

    def restricted(self, keys: Iterable[MarketKey]) -> "TraceCatalog":
        """A sub-catalog containing only ``keys`` (e.g. one region pair)."""
        keys = list(keys)
        return TraceCatalog(
            {k: self.trace(k) for k in keys},
            {k: self.on_demand_price(k) for k in keys},
            self.horizon,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TraceCatalog {len(self)} markets horizon={self.horizon:.0f}s>"


def build_catalog(
    seed: int,
    horizon: float,
    regions: Iterable[str] = REGIONS,
    sizes: Iterable[str] = SIZES,
    calibrations: Mapping[tuple[str, str], MarketCalibration] | None = None,
) -> TraceCatalog:
    """Generate the full trace catalog for one simulation run.

    Parameters
    ----------
    seed:
        Root seed; every market's trace and the shared shock streams derive
        from it deterministically.
    horizon:
        Trace length in seconds.
    regions, sizes:
        Subsets of the paper's four AZs and four sizes.
    calibrations:
        Optional overrides, keyed by ``(region, size)``; missing keys fall
        back to :func:`repro.traces.calibration.calibration_for`.
    """
    streams = RngStreams(seed)
    gen = TraceGenerator(streams, horizon)
    traces: dict[MarketKey, PriceTrace] = {}
    od: dict[MarketKey, float] = {}
    for region in regions:
        for size in sizes:
            cal = None
            if calibrations is not None:
                cal = calibrations.get((region, size))
            if cal is None:
                cal = calibration_for(region, size)
            key = MarketKey(region=region, size=size)
            traces[key] = gen.generate(cal)
            od[key] = on_demand_price(region, size)
    return TraceCatalog(traces, od, horizon)
