"""``repro-calibrate`` — fit generator calibrations to a real archive.

Examples::

    repro-calibrate --segments segments/ --out calibrations.json
    repro-calibrate --csv history.csv --out calibrations.json
    repro-calibrate --segments segments/ --grid-step 600

The fitted JSON plugs into trace generation through
:func:`repro.traces.refit.load_calibrations` +
:func:`repro.traces.catalog.build_catalog`'s ``calibrations`` argument.
See ``docs/DATA.md`` for the full refit pipeline walkthrough.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from repro.analysis.tables import Table
from repro.errors import ReproError
from repro.traces.ingest import ingest_archive, load_segment_catalog
from repro.traces.refit import fit_catalog, save_calibrations

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-calibrate",
        description="Fit regime-switching generator parameters to spot-price history.",
    )
    p.add_argument("--segments", metavar="DIR", default=None,
                   help="ingested segment directory to fit (from repro.traces.ingest)")
    p.add_argument("--csv", metavar="PATH", nargs="+", default=None,
                   help="AWS-format CSV/gzip archive(s); ingested to a "
                   "temporary segment directory before fitting")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the fitted calibration set as JSON to PATH")
    p.add_argument("--grid-step", type=float, default=300.0, metavar="S",
                   help="resampling grid (seconds) for the correlation-share fit")
    return p


def _render(calibrations) -> str:
    t = Table(
        headers=("region", "size", "od $", "calm frac", "sigma",
                 "exc/hr", "sharp/hr", "reg share", "glob share"),
        title=f"fitted calibrations ({len(calibrations)} market(s))",
    )
    for key in sorted(calibrations):
        cal = calibrations[key]
        t.add_row(
            cal.region, cal.size, cal.on_demand,
            round(cal.calm_base_frac, 3), round(cal.calm_sigma, 3),
            round(cal.expected_excursion_rate(), 4),
            round(cal.sharp_spikes.rate_per_hour, 4),
            round(cal.regional_shock_share, 3),
            round(cal.global_shock_share, 3),
        )
    return t.render()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.segments is None) == (args.csv is None):
        print("pass exactly one of --segments DIR or --csv PATH", file=sys.stderr)
        return 2
    try:
        if args.segments is not None:
            catalog = load_segment_catalog(args.segments)
            calibrations = fit_catalog(catalog, grid_step_s=args.grid_step)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-calibrate-") as tmp:
                ingest_archive(args.csv, tmp)
                catalog = load_segment_catalog(tmp)
                calibrations = fit_catalog(catalog, grid_step_s=args.grid_step)
    except ReproError as exc:
        print(f"refit failed: {exc}", file=sys.stderr)
        return 1
    print(_render(calibrations))
    if args.out is not None:
        save_calibrations(args.out, calibrations)
        print(f"\ncalibrations written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
