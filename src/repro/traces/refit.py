"""Calibration refit: estimate generator parameters from real archives.

The synthetic :mod:`~repro.traces.generator` is calibrated by hand to the
statistics the paper reports. When a user has an actual
``DescribeSpotPriceHistory`` archive (ingested with
:mod:`repro.traces.ingest`), this module closes the loop: it fits the
regime-switching process — calm level/dispersion/reversion, per-class
excursion rates, durations and peak heights, and the cross-market shock
shares — to the observed traces and emits a
:class:`~repro.traces.calibration.MarketCalibration` per market that
:func:`~repro.traces.catalog.build_catalog` consumes directly. Fitted
values are clamped into each field's validated range, so a fit never
produces an unconstructible calibration.

``tests/traces/test_calibration.py`` pins the closure property: fitting a
generated archive and regenerating from the fit reproduces the source's
excursion rate, calm-price quantiles and cross-market correlation sign
within fixed bands.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.traces.calibration import MarketCalibration, SpikeModel
from repro.traces.catalog import TraceCatalog
from repro.traces.generator import CALM_CEILING_FRAC, TraceGenerator
from repro.traces.statistics import (
    ExcursionEpisode,
    calm_change_rate_per_hour,
    calm_profile,
    excursion_episodes,
    weighted_quantile,
)
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "fit_market",
    "fit_catalog",
    "save_calibrations",
    "load_calibrations",
    "CALIBRATION_FILE_VERSION",
]

CALIBRATION_FILE_VERSION = 1

#: Excursion classification thresholds, mirroring the generator's defaults:
#: peaks at or past the 4x bid cap are "sharp"; short excursions staying
#: below the spike floor (1.3x on-demand) are "blips"; the rest are spikes.
SHARP_PEAK_FRAC = 4.0
BLIP_PEAK_FRAC = 1.3
BLIP_MAX_DURATION_S = 1200.0

#: Fallback per-class shape parameters when a class has no observed
#: episodes (its rate fits to 0, so the shape is inert but must validate).
_CLASS_FALLBACK = {
    "blips": SpikeModel(0.0, 420.0, 0.6, 1.02, 1.6, sharp=False),
    "spikes": SpikeModel(0.0, 4200.0, 0.9, 1.3, 3.8, sharp=False),
    "sharp_spikes": SpikeModel(0.0, 3000.0, 0.8, 4.3, 6.0, sharp=True),
}


def _clamp(x: float, lo: float, hi: float) -> float:
    return float(min(max(x, lo), hi))


def _fit_class(
    cls: str, episodes: Sequence[ExcursionEpisode], hours: float, od: float
) -> SpikeModel:
    """Fit one excursion class from its classified episodes."""
    fallback = _CLASS_FALLBACK[cls]
    if not episodes:
        return fallback
    durations = np.array([max(e.duration_s, 30.0) for e in episodes])
    peaks = np.array([e.peak for e in episodes]) / od
    log_d = np.log(durations)
    sigma = _clamp(float(log_d.std()), 0.0, 1.5) if len(episodes) > 1 else fallback.duration_sigma
    lo = _clamp(float(peaks.min()), 1.005, 50.0)
    hi = _clamp(float(peaks.max()), lo, 60.0)
    return SpikeModel(
        rate_per_hour=len(episodes) / hours,
        duration_mean_s=float(durations.mean()),
        duration_sigma=sigma,
        peak_lo_frac=lo,
        peak_hi_frac=hi,
        sharp=fallback.sharp,
    )


def _classify(episodes: Sequence[ExcursionEpisode], od: float) -> Dict[str, list]:
    out: Dict[str, list] = {"blips": [], "spikes": [], "sharp_spikes": []}
    for e in episodes:
        if e.peak >= SHARP_PEAK_FRAC * od:
            out["sharp_spikes"].append(e)
        elif e.peak < BLIP_PEAK_FRAC * od and e.duration_s <= BLIP_MAX_DURATION_S:
            out["blips"].append(e)
        else:
            out["spikes"].append(e)
    return out


def fit_market(
    trace: PriceTrace, on_demand: float, region: str = "", size: str = ""
) -> MarketCalibration:
    """Fit one market's regime-switching parameters from its trace.

    Cross-market fields (``regional_shock_share`` / ``global_shock_share``)
    keep their defaults here; :func:`fit_catalog` refines them from the
    observed correlation structure when several markets are available.
    """
    if on_demand <= 0:
        raise CalibrationError(f"on-demand price must be positive, got {on_demand}")
    od = float(on_demand)
    hours = trace.duration / SECONDS_PER_HOUR
    if hours <= 1.0:
        raise CalibrationError("refit needs more than one hour of history")

    episodes = excursion_episodes(trace, od)
    by_class = _classify(episodes, od)
    models = {cls: _fit_class(cls, eps, hours, od) for cls, eps in by_class.items()}

    calm_dur, calm_prices = calm_profile(trace, CALM_CEILING_FRAC * od)
    if calm_prices.size == 0:
        # Sustained-high market: everything sits above the calm ceiling.
        # Anchor the calm leg just under the ceiling so generation is valid.
        calm_median = CALM_CEILING_FRAC * od * 0.98
        calm_sigma = 0.05
        reversion = 0.4
        floor_frac = 0.05
    else:
        calm_median = weighted_quantile(calm_prices, calm_dur, 0.5)
        log_dev = np.log(calm_prices / calm_median)
        total = calm_dur.sum()
        var = float(np.dot(calm_dur, log_dev**2) / total)
        # The generator layers shared regional+global AR(1) drifts on top of
        # every market's own calm jitter; subtract their stationary variance
        # so refit->generate doesn't inflate dispersion on each round trip.
        drift_var = TraceGenerator._REGIONAL_DRIFT_STD**2 + TraceGenerator._GLOBAL_DRIFT_STD**2
        calm_sigma = _clamp(np.sqrt(max(var - drift_var, 1e-4)), 0.01, 1.5)
        if calm_prices.size > 2:
            x = np.log(calm_prices / calm_median)
            phi = float(np.corrcoef(x[1:], x[:-1])[0, 1]) if x[1:].std() > 0 else 0.6
            if not np.isfinite(phi):
                phi = 0.6
            reversion = _clamp(1.0 - phi, 0.02, 1.0)
        else:
            reversion = 0.4
        floor_frac = _clamp(float(calm_prices.min()) / od * 0.95, 0.005, 0.5)

    calm_base_frac = _clamp(calm_median / od, 0.02, 0.9)
    change_rate = _clamp(
        calm_change_rate_per_hour(trace, CALM_CEILING_FRAC * od), 0.05, 60.0
    )

    return MarketCalibration(
        region=region or trace.region,
        size=size or trace.market,
        on_demand=od,
        calm_base_frac=calm_base_frac,
        calm_sigma=calm_sigma,
        calm_reversion=reversion,
        calm_change_rate_per_hour=change_rate,
        blips=models["blips"],
        spikes=models["spikes"],
        sharp_spikes=models["sharp_spikes"],
        price_floor_frac=floor_frac,
    )


def fit_catalog(
    catalog: TraceCatalog, grid_step_s: float = 300.0
) -> Dict[Tuple[str, str], MarketCalibration]:
    """Fit every market of a catalog, including the cross-market shares.

    Per-market parameters come from :func:`fit_market`; the regional and
    global shock shares are then estimated from the observed mean pairwise
    price correlations — within-region pairs drive the regional share,
    cross-region pairs the global share — clamped into validated ranges.
    The result plugs straight into
    :func:`repro.traces.catalog.build_catalog`'s ``calibrations``.
    """
    from repro.traces.statistics import trace_correlation

    keys = catalog.markets()
    cals = {
        (k.region, k.size): fit_market(
            catalog.trace(k), catalog.on_demand_price(k), k.region, k.size
        )
        for k in keys
    }

    intra: List[float] = []
    cross: List[float] = []
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            rho = trace_correlation(catalog.trace(a), catalog.trace(b), step=grid_step_s)
            (intra if a.region == b.region else cross).append(rho)
    regional = _clamp(1.8 * float(np.mean(intra)), 0.0, 0.6) if intra else 0.25
    global_ = _clamp(1.5 * float(np.mean(cross)), 0.0, 0.3) if cross else 0.06
    if regional + global_ > 0.9:  # keep well inside the shares-sum<=1 validation
        scale = 0.9 / (regional + global_)
        regional *= scale
        global_ *= scale
    return {
        key: replace(cal, regional_shock_share=regional, global_shock_share=global_)
        for key, cal in cals.items()
    }


# ------------------------------------------------------------- persistence
def save_calibrations(
    path: str | Path, calibrations: Mapping[Tuple[str, str], MarketCalibration]
) -> None:
    """Write a fitted calibration set as JSON (inverse of :func:`load_calibrations`)."""
    payload = {
        "format": "repro-calibrations",
        "version": CALIBRATION_FILE_VERSION,
        "markets": [
            calibrations[key].to_dict() for key in sorted(calibrations)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_calibrations(path: str | Path) -> Dict[Tuple[str, str], MarketCalibration]:
    """Load a calibration set written by :func:`save_calibrations`.

    Returns a ``{(region, size): MarketCalibration}`` mapping, the shape
    :func:`~repro.traces.catalog.build_catalog` accepts.
    """
    p = Path(path)
    try:
        payload = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CalibrationError(f"cannot read calibration file {p}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != "repro-calibrations":
        raise CalibrationError(f"{p}: not a repro-calibrations file")
    if payload.get("version") != CALIBRATION_FILE_VERSION:
        raise CalibrationError(
            f"{p}: unsupported calibration file version {payload.get('version')!r}"
        )
    out: Dict[Tuple[str, str], MarketCalibration] = {}
    for entry in payload.get("markets", []):
        cal = MarketCalibration.from_dict(entry)
        out[(cal.region, cal.size)] = cal
    if not out:
        raise CalibrationError(f"{p}: calibration file lists no markets")
    return out
