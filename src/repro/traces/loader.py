"""IO for spot-price traces in the AWS ``DescribeSpotPriceHistory`` CSV shape.

Real Amazon spot-price history (as returned by
``aws ec2 describe-spot-price-history`` and mirrored by several public
archives) is a sequence of records::

    Timestamp,InstanceType,ProductDescription,AvailabilityZone,SpotPrice
    2015-02-01T00:04:17Z,m1.small,Linux/UNIX,us-east-1a,0.0071

This module converts between that format and :class:`PriceTrace`, so users
with access to archived traces can seed every experiment with real data
instead of the synthetic calibration (the substitution documented in
DESIGN.md).
"""

from __future__ import annotations

import csv
import datetime as _dt
import gzip
import math
import re
from pathlib import Path
from typing import Iterator, TextIO, Tuple

import numpy as np

from repro.errors import TraceFormatError
from repro.traces.trace import PriceTrace

__all__ = [
    "load_aws_csv",
    "save_aws_csv",
    "iter_aws_rows",
    "parse_aws_timestamp",
    "format_aws_timestamp",
    "roundtrip_equal",
]

_HEADER = ["Timestamp", "InstanceType", "ProductDescription", "AvailabilityZone", "SpotPrice"]
_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)

#: Fractional-second timestamp: base, ``.digits``, optional zone suffix.
#: Python's ``fromisoformat`` only accepts 3- or 6-digit fractions before
#: 3.11, so fractions are split off and re-attached as plain arithmetic.
_FRACTION_RE = re.compile(r"^(?P<base>[^.]*)\.(?P<frac>\d+)(?P<tz>Z|[+-]\d{2}:?\d{2})?$")

#: Decimal places kept for fractional seconds on write — comfortably below
#: ``roundtrip_equal``'s 1e-9 tolerance.
_FRAC_DIGITS = 9


def parse_aws_timestamp(text: str) -> float:
    """Parse an ISO-8601 ``Z``-suffixed timestamp to epoch seconds.

    Fractional seconds of any precision are accepted (AWS emits whole
    seconds; :func:`save_aws_csv` emits up to nanoseconds when a trace has
    sub-second change points).
    """
    text = text.strip()
    frac = 0.0
    m = _FRACTION_RE.match(text)
    if m is not None:
        frac = float(f"0.{m.group('frac')}")
        text = m.group("base") + (m.group("tz") or "")
    try:
        if text.endswith("Z"):
            dt = _dt.datetime.fromisoformat(text[:-1]).replace(tzinfo=_dt.timezone.utc)
        else:
            dt = _dt.datetime.fromisoformat(text)
            if dt.tzinfo is None:
                dt = dt.replace(tzinfo=_dt.timezone.utc)
    except ValueError as exc:
        raise TraceFormatError(f"bad timestamp {text!r}") from exc
    return (dt - _EPOCH).total_seconds() + frac


def format_aws_timestamp(epoch_seconds: float) -> str:
    """Format epoch seconds as the ``Z``-suffixed ISO form AWS emits.

    Whole seconds keep AWS's exact shape (``2015-02-01T00:04:17Z``); a
    fractional second is appended at nanosecond precision with trailing
    zeros trimmed (``...T00:04:17.25Z``), so sub-second change points
    survive the CSV round-trip instead of collapsing onto one second.
    """
    total = round(float(epoch_seconds), _FRAC_DIGITS)
    secs = math.floor(total)
    frac = round(total - secs, _FRAC_DIGITS)
    if frac >= 1.0:  # rounding carried into the next second
        secs += 1
        frac = 0.0
    dt = _EPOCH + _dt.timedelta(seconds=secs)
    base = dt.strftime("%Y-%m-%dT%H:%M:%S")
    if frac > 0.0:
        base += f"{frac:.{_FRAC_DIGITS}f}".rstrip("0")[1:]  # '.dddd', no leading 0
    return base + "Z"


def _open_for_read(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    """Open a path (plain or gzip) or pass a stream through.

    Path sources are decoded as ``utf-8-sig``: real archive dumps routinely
    carry a UTF-8 BOM on the first header cell (``\\ufeffTimestamp``), which
    used to raise an unexpected-header error. Gzip members are detected by
    magic bytes, not suffix, so ``archive.csv.gz`` and a misnamed plain file
    both work.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as probe:
            magic = probe.read(2)
        if magic == b"\x1f\x8b":
            return gzip.open(source, "rt", encoding="utf-8-sig", newline=""), True
        return open(source, "r", encoding="utf-8-sig", newline=""), True
    return source, False


#: One validated archive record: (epoch seconds, instance type, AZ, price).
AwsRow = Tuple[float, str, str, float]


def iter_aws_rows(fh: TextIO) -> Iterator[AwsRow]:
    """Stream validated records from an open AWS-format CSV.

    The single row-level parser behind :func:`load_aws_csv` and the bulk
    archive ingester (:mod:`repro.traces.ingest`): it validates the header
    (stripping a UTF-8 BOM that survived stream input), skips blank lines,
    and yields ``(epoch_seconds, instance_type, availability_zone, price)``
    tuples one at a time — the caller decides whether to accumulate them
    (single-market load) or demultiplex them onto disk (bulk ingest), so
    this function itself holds O(1) memory.
    """
    reader = csv.reader(fh)
    header = next(reader, None)
    if header is None:
        raise TraceFormatError("empty trace file")
    header = [h.strip() for h in header]
    if header:
        # A BOM on stream input (path sources already decode utf-8-sig).
        header[0] = header[0].lstrip("\ufeff")
    if header != _HEADER:
        raise TraceFormatError(f"unexpected header {header!r}; want {_HEADER!r}")
    for lineno, row in enumerate(reader, start=2):
        if not row or all(not c.strip() for c in row):
            continue
        if len(row) != 5:
            raise TraceFormatError(f"line {lineno}: expected 5 fields, got {len(row)}")
        ts, itype, _product, az, price_s = (c.strip() for c in row)
        try:
            price = float(price_s)
        except ValueError as exc:
            raise TraceFormatError(f"line {lineno}: bad price {price_s!r}") from exc
        yield parse_aws_timestamp(ts), itype, az, price


def load_aws_csv(
    source: str | Path | TextIO,
    *,
    instance_type: str | None = None,
    availability_zone: str | None = None,
    horizon: float | None = None,
    rebase_to_zero: bool = True,
) -> PriceTrace:
    """Load one market's trace from an AWS-format CSV.

    Parameters
    ----------
    source:
        Path or open text stream.
    instance_type / availability_zone:
        Optional filters; required if the file mixes several markets.
    horizon:
        Validity end, **in the returned trace's time frame**: when
        ``rebase_to_zero`` is true (the default) that frame is seconds
        since the first record, NOT epoch seconds — a raw epoch horizon
        would silently mix frames. Must be strictly later than the last
        (rebased) change point. Defaults to one hour past the last record.
    rebase_to_zero:
        Shift times so the first record is at t=0 (what the simulator
        expects).

    Raises
    ------
    TraceFormatError
        On malformed rows, empty selections, ambiguous (multi-market)
        content when no filter is given, or a ``horizon`` at or before
        the last change point in the trace's frame.
    """
    fh, should_close = _open_for_read(source)
    try:
        rows = list(iter_aws_rows(fh))
    finally:
        if should_close:
            fh.close()

    if instance_type is not None:
        rows = [r for r in rows if r[1] == instance_type]
    if availability_zone is not None:
        rows = [r for r in rows if r[2] == availability_zone]
    if not rows:
        raise TraceFormatError("no records match the requested market")

    markets = {(r[1], r[2]) for r in rows}
    if len(markets) > 1:
        raise TraceFormatError(
            f"file contains {len(markets)} markets {sorted(markets)}; "
            "pass instance_type/availability_zone filters"
        )
    (itype, az) = next(iter(markets))

    rows.sort(key=lambda r: r[0])
    times = np.array([r[0] for r in rows])
    prices = np.array([r[3] for r in rows])
    # AWS reports a record per change but occasionally repeats a timestamp;
    # keep the last record of each timestamp.
    keep = np.concatenate([np.diff(times) > 0, [True]])
    times, prices = times[keep], prices[keep]

    if rebase_to_zero:
        times = times - times[0]
    if horizon is not None and horizon <= times[-1]:
        frame = "rebased (seconds since first record)" if rebase_to_zero else "epoch"
        raise TraceFormatError(
            f"horizon {horizon} is not after the last change point "
            f"{float(times[-1])} in the trace's {frame} frame; pass a "
            "horizon in that frame, strictly past the final record"
        )
    end = horizon if horizon is not None else float(times[-1] + 3600.0)
    return PriceTrace(times, prices, end, market=itype, region=az)


def save_aws_csv(
    trace: PriceTrace,
    dest: str | Path | TextIO,
    *,
    instance_type: str | None = None,
    availability_zone: str | None = None,
    product: str = "Linux/UNIX",
    epoch_offset: float = 0.0,
) -> None:
    """Write a trace in the AWS CSV shape (inverse of :func:`load_aws_csv`)."""
    itype = instance_type or trace.market or "unknown"
    az = availability_zone or trace.region or "unknown"

    def _write(fh: TextIO) -> None:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        for t, p in zip(trace.times, trace.prices):
            # repr precision: the shortest decimal that parses back to the
            # identical float, so prices survive the round-trip exactly
            # (AWS's own %.6f shape truncates sub-microdollar rates).
            writer.writerow(
                [format_aws_timestamp(t + epoch_offset), itype, product, az, repr(float(p))]
            )

    if isinstance(dest, (str, Path)):
        with open(dest, "w", newline="") as fh:
            _write(fh)
    else:
        _write(dest)


def roundtrip_equal(a: PriceTrace, b: PriceTrace, tol: float = 1e-9) -> bool:
    """True when two traces have identical change points and prices.

    The comparison is purely absolute (``rtol=0``): ``np.allclose``'s
    default relative term scales with the *magnitude* of the values, so
    epoch-frame change times (~1.4e9 s) would otherwise compare "equal"
    with up to ~4 hours of drift — non-rebased round-trips used to
    false-pass on wildly different timestamps.
    """
    return (
        len(a) == len(b)
        and bool(np.allclose(a.times, b.times, rtol=0.0, atol=tol))
        and bool(np.allclose(a.prices, b.prices, rtol=0.0, atol=tol))
    )
