"""Spot-price traces: data structures, synthetic generation, IO, statistics.

The paper seeds its simulations with Amazon's published spot-price history
for four markets (small/medium/large/xlarge) in four availability zones
(us-east-1a, us-east-1b, us-west-1a, eu-west-1a). We reproduce that input as
a calibrated regime-switching price process (see
:mod:`repro.traces.generator` and :mod:`repro.traces.calibration`) and also
support loading real traces in the AWS ``DescribeSpotPriceHistory`` CSV
format (:mod:`repro.traces.loader`).
"""

from repro.traces.trace import PriceTrace
from repro.traces.compiled import CompiledTrace
from repro.traces.calibration import (
    MarketCalibration,
    SpikeModel,
    calibration_for,
    DEFAULT_CALIBRATIONS,
)
from repro.traces.generator import TraceGenerator, generate_trace
from repro.traces.catalog import TraceCatalog, MarketKey, build_catalog
from repro.traces.loader import load_aws_csv, save_aws_csv, iter_aws_rows, roundtrip_equal
from repro.traces.ingest import (
    IngestReport,
    ingest_archive,
    load_segment_catalog,
    read_segment,
    write_segment,
)
from repro.traces.refit import (
    fit_catalog,
    fit_market,
    load_calibrations,
    save_calibrations,
)
from repro.traces.validation import validate_trace, ValidationReport, ValidationCheck
from repro.traces.statistics import (
    trace_correlation,
    correlation_matrix,
    mean_pairwise_correlation,
    price_std,
    time_above_fraction,
    summarize_trace,
)

__all__ = [
    "PriceTrace",
    "CompiledTrace",
    "MarketCalibration",
    "SpikeModel",
    "calibration_for",
    "DEFAULT_CALIBRATIONS",
    "TraceGenerator",
    "generate_trace",
    "TraceCatalog",
    "MarketKey",
    "build_catalog",
    "load_aws_csv",
    "save_aws_csv",
    "iter_aws_rows",
    "roundtrip_equal",
    "IngestReport",
    "ingest_archive",
    "load_segment_catalog",
    "read_segment",
    "write_segment",
    "fit_catalog",
    "fit_market",
    "load_calibrations",
    "save_calibrations",
    "trace_correlation",
    "correlation_matrix",
    "mean_pairwise_correlation",
    "price_std",
    "time_above_fraction",
    "summarize_trace",
    "validate_trace",
    "ValidationReport",
    "ValidationCheck",
]
