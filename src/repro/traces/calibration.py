"""Per-market calibration of the synthetic spot-price process.

The paper's simulations are seeded with Amazon spot-price history from four
availability zones (us-east-1a, us-east-1b, us-west-1a, eu-west-1a) and four
instance sizes (small, medium, large, xlarge), Feb-Mar 2014/2015. We cannot
redistribute those traces, so this module encodes the *statistical structure*
the paper reports and relies on:

* calm-period prices sit far below the on-demand price (spot servers are
  "usually cheap" — a few cents for long periods, Fig 1);
* occasional spikes cross the on-demand price and sometimes exceed the 4x
  on-demand bid cap (Fig 1(b): up to $3/hr on a $0.24/hr market);
* short "blips" just above the on-demand price revoke a reactive bidder but
  are invisible to a boundary-timed proactive bidder;
* us-east markets are cheaper but more volatile than us-west, which is more
  volatile than eu-west (Fig 10) — this drives the multi-region result that
  chasing cheap-but-volatile markets can *increase* unavailability (Fig 9c);
* prices across markets and regions are weakly correlated (Figs 8b, 9b),
  modelled with shared regional / global shock processes.

Each knob below is documented with the paper observation it encodes; tests in
``tests/traces/test_calibration.py`` pin the resulting statistics to the
qualitative bands.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace

from repro.errors import CalibrationError

__all__ = [
    "SpikeModel",
    "MarketCalibration",
    "SIZES",
    "REGIONS",
    "ALL_REGIONS",
    "ON_DEMAND_PRICES",
    "REGION_OD_MULTIPLIER",
    "on_demand_price",
    "DEFAULT_CALIBRATIONS",
    "calibration_for",
]

#: Instance sizes studied in the paper's evaluation (Section 4.1).
SIZES = ("small", "medium", "large", "xlarge")

#: Availability zones studied in the paper's evaluation (Section 4.1).
REGIONS = ("us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a")

#: All calibrated availability zones: the paper's four plus extension AZs
#: (us-west-1b) added for fleet-scale runs that want wider market sets.
#: Single-run defaults stay pinned to the paper's :data:`REGIONS`; only
#: callers that opt in (``repro-fleet``) see the extras.
ALL_REGIONS = ("us-east-1a", "us-east-1b", "us-west-1a", "us-west-1b", "eu-west-1a")

#: On-demand hourly prices (USD). The paper quotes "6 cents per hour for the
#: small configuration" (Section 2.1); the remaining sizes follow EC2's
#: classic doubling ladder.
ON_DEMAND_PRICES = {
    "small": 0.06,
    "medium": 0.12,
    "large": 0.24,
    "xlarge": 0.48,
}

#: Regional on-demand premium over us-east (EU has historically been the
#: most expensive region; both us-east AZs share a price).
REGION_OD_MULTIPLIER = {
    "us-east-1a": 1.00,
    "us-east-1b": 1.00,
    "us-west-1a": 1.06,
    "us-west-1b": 1.06,
    "eu-west-1a": 1.12,
}


def on_demand_price(region: str, size: str) -> float:
    """On-demand hourly price for a (region, size) market."""
    try:
        return ON_DEMAND_PRICES[size] * REGION_OD_MULTIPLIER[region]
    except KeyError as exc:
        raise CalibrationError(f"unknown market {region}/{size}") from exc


@dataclass(frozen=True)
class SpikeModel:
    """Parameters of one class of price excursions above the calm level.

    Attributes
    ----------
    rate_per_hour:
        Poisson arrival rate of excursions.
    duration_mean_s / duration_sigma:
        Lognormal holding time of the excursion (mean of the underlying
        normal is derived from ``duration_mean_s``).
    peak_lo_frac / peak_hi_frac:
        Peak price as a multiple of the **on-demand** price, drawn uniformly.
    sharp:
        If true the price jumps to its peak in a single step (revoking even a
        4x-on-demand proactive bid before any planned migration can start);
        otherwise the excursion ramps up over a few intermediate steps.
    """

    rate_per_hour: float
    duration_mean_s: float
    duration_sigma: float
    peak_lo_frac: float
    peak_hi_frac: float
    sharp: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise CalibrationError("spike rate must be >= 0")
        if self.duration_mean_s <= 0:
            raise CalibrationError("spike duration must be positive")
        if self.duration_sigma < 0:
            raise CalibrationError("duration sigma must be >= 0")
        if not (0 < self.peak_lo_frac <= self.peak_hi_frac):
            raise CalibrationError("need 0 < peak_lo_frac <= peak_hi_frac")

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SpikeModel":
        """Rebuild from :meth:`to_dict` output; unknown keys are rejected."""
        try:
            return cls(**data)
        except TypeError as exc:
            raise CalibrationError(f"bad spike-model fields: {exc}") from exc


@dataclass(frozen=True)
class MarketCalibration:
    """Full parameter set for one (region, size) spot market.

    ``blips`` are brief excursions barely above on-demand; ``spikes`` are
    longer/larger ones; ``sharp_spikes`` exceed the 4x bid cap abruptly.
    ``regional_shock_share`` / ``global_shock_share`` give the fraction of
    excursions that arrive from a shared per-region / cross-region Poisson
    stream, inducing the weak price correlation of Figs 8b / 9b.
    """

    region: str
    size: str
    on_demand: float
    calm_base_frac: float  #: calm price level as a fraction of on-demand
    calm_sigma: float  #: lognormal jitter of calm prices
    calm_reversion: float  #: AR(1) pull toward the base (0..1, 1 = iid)
    calm_change_rate_per_hour: float  #: intensity of calm re-pricings
    blips: SpikeModel
    spikes: SpikeModel
    sharp_spikes: SpikeModel
    regional_shock_share: float = 0.25
    global_shock_share: float = 0.06
    price_floor_frac: float = 0.05  #: absolute floor as fraction of on-demand
    #: Temporal clustering ("burstiness") of excursions: each market
    #: alternates between quiet stretches and turbulent episodes during
    #: which excursions of every class arrive ``turbulent_mult`` times more
    #: often (the stationary mean rate is preserved). Real spot markets are
    #: strongly bursty; this is also what makes *leaving* a hot market
    #: valuable to the multi-market scheduler (Fig 8c).
    turbulent_mult: float = 3.2
    quiet_mean_s: float = 5 * 86400.0
    turbulent_mean_s: float = 1.5 * 86400.0

    def __post_init__(self) -> None:
        if not 0 < self.calm_base_frac < 1:
            raise CalibrationError("calm base must be a fraction of on-demand in (0,1)")
        if self.calm_sigma < 0 or self.calm_sigma > 1.5:
            raise CalibrationError("calm sigma out of range [0, 1.5]")
        if not 0 <= self.calm_reversion <= 1:
            raise CalibrationError("calm reversion must be in [0,1]")
        if self.calm_change_rate_per_hour <= 0:
            raise CalibrationError("calm change rate must be positive")
        if not 0 <= self.regional_shock_share <= 1:
            raise CalibrationError("regional shock share must be in [0,1]")
        if not 0 <= self.global_shock_share <= 1:
            raise CalibrationError("global shock share must be in [0,1]")
        if self.regional_shock_share + self.global_shock_share > 1:
            raise CalibrationError("shock shares must sum to <= 1")
        if self.on_demand <= 0:
            raise CalibrationError("on-demand price must be positive")
        if self.turbulent_mult < 1.0:
            raise CalibrationError("turbulent multiplier must be >= 1")
        if self.quiet_mean_s <= 0 or self.turbulent_mean_s <= 0:
            raise CalibrationError("turbulence episode means must be positive")
        if self.quiet_rate_mult() < 0:
            raise CalibrationError(
                "turbulence parameters imply a negative quiet-period rate; "
                "reduce turbulent_mult or the turbulent fraction"
            )

    def turbulent_fraction(self) -> float:
        """Stationary fraction of time spent in turbulent episodes."""
        return self.turbulent_mean_s / (self.turbulent_mean_s + self.quiet_mean_s)

    def quiet_rate_mult(self) -> float:
        """Quiet-period rate multiplier preserving the stationary mean rate."""
        f = self.turbulent_fraction()
        if f >= 1.0:
            return 1.0
        return (1.0 - f * self.turbulent_mult) / (1.0 - f)

    # Derived quantities used by tests and documentation --------------------
    def expected_time_above_od_fraction(self) -> float:
        """First-order estimate of the fraction of time price > on-demand.

        Blips, spikes and sharp spikes all exceed the on-demand price for
        (approximately) their full duration.
        """
        total = 0.0
        for m in (self.blips, self.spikes, self.sharp_spikes):
            total += m.rate_per_hour * m.duration_mean_s / 3600.0
        return total

    def expected_excursion_rate(self) -> float:
        """Total excursion arrivals per hour (reactive revocation rate proxy)."""
        return (
            self.blips.rate_per_hour
            + self.spikes.rate_per_hour
            + self.sharp_spikes.rate_per_hour
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`).

        The format ``repro-calibrate`` emits: nested spike models become
        plain dicts, everything else is scalars.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MarketCalibration":
        """Rebuild a calibration from :meth:`to_dict` / JSON output."""
        if not isinstance(data, dict):
            raise CalibrationError(f"calibration entry must be a dict, got {type(data)}")
        fields = dict(data)
        try:
            for name in ("blips", "spikes", "sharp_spikes"):
                fields[name] = SpikeModel.from_dict(fields[name])
        except KeyError as exc:
            raise CalibrationError(f"calibration entry missing {exc}") from exc
        try:
            return cls(**fields)
        except TypeError as exc:
            raise CalibrationError(f"bad calibration fields: {exc}") from exc


# --------------------------------------------------------------------------
# Region personalities (Fig 10: us-east volatile & cheap, eu-west stable &
# pricier). Values are shared across sizes, then nudged per-size below.
# --------------------------------------------------------------------------
_REGION_PERSONALITY: dict[str, dict[str, float]] = {
    # calm: calm price as fraction of on-demand; blip/spike/sharp: arrival
    # rates per hour; dur: mean spike duration (s); sig: calm lognormal std;
    # peak: multiplier on excursion peak heights (us-east spikes higher).
    "us-east-1a": dict(calm=0.21, blip=0.012, spike=0.010, sharp=0.0022, dur=4200.0, sig=0.22, peak=1.00),
    "us-east-1b": dict(calm=0.19, blip=0.015, spike=0.012, sharp=0.0026, dur=4600.0, sig=0.25, peak=1.05),
    "us-west-1a": dict(calm=0.28, blip=0.007, spike=0.006, sharp=0.0012, dur=3000.0, sig=0.14, peak=0.62),
    "us-west-1b": dict(calm=0.26, blip=0.008, spike=0.007, sharp=0.0014, dur=3200.0, sig=0.16, peak=0.70),
    "eu-west-1a": dict(calm=0.33, blip=0.004, spike=0.0035, sharp=0.0008, dur=2200.0, sig=0.10, peak=0.42),
}

#: Per-size multipliers: larger markets are slightly deeper (fewer excursions)
#: and their calm level sits a bit lower relative to on-demand, spreading the
#: single-market normalized costs across the paper's 17-33 % band (Fig 6a).
_SIZE_PERSONALITY: dict[str, dict[str, float]] = {
    "small": dict(calm_mul=1.20, rate_mul=1.25, peak_hi=9.0),
    "medium": dict(calm_mul=1.05, rate_mul=1.10, peak_hi=8.0),
    "large": dict(calm_mul=0.90, rate_mul=0.90, peak_hi=7.0),
    "xlarge": dict(calm_mul=0.75, rate_mul=0.55, peak_hi=6.0),
}


def _build_calibration(region: str, size: str) -> MarketCalibration:
    rp = _REGION_PERSONALITY[region]
    sp = _SIZE_PERSONALITY[size]
    od = on_demand_price(region, size)
    calm_frac = min(0.45, rp["calm"] * sp["calm_mul"])
    blips = SpikeModel(
        rate_per_hour=rp["blip"] * sp["rate_mul"],
        duration_mean_s=420.0,
        duration_sigma=0.6,
        peak_lo_frac=1.02,
        peak_hi_frac=1.02 + 0.58 * rp["peak"],
        sharp=False,
    )
    spikes = SpikeModel(
        rate_per_hour=rp["spike"] * sp["rate_mul"],
        duration_mean_s=rp["dur"],
        duration_sigma=0.9,
        peak_lo_frac=1.3,
        peak_hi_frac=1.3 + 2.5 * rp["peak"],
        sharp=False,
    )
    # Sharp (past-the-bid-cap) spikes scale only weakly with size: extreme
    # scarcity events hit the whole capacity pool, not one size class.
    sharp = SpikeModel(
        rate_per_hour=rp["sharp"] * sp["rate_mul"] ** 0.3,
        duration_mean_s=rp["dur"] * 0.7,
        duration_sigma=0.8,
        peak_lo_frac=4.3,
        peak_hi_frac=max(4.6, sp["peak_hi"] * rp["peak"]),
        sharp=True,
    )
    return MarketCalibration(
        region=region,
        size=size,
        on_demand=od,
        calm_base_frac=calm_frac,
        calm_sigma=rp["sig"],
        calm_reversion=0.4,
        calm_change_rate_per_hour=4.0,
        blips=blips,
        spikes=spikes,
        sharp_spikes=sharp,
        regional_shock_share=0.35,
        global_shock_share=0.12,
    )


#: Calibrations for every (region, size) market: the paper's evaluation
#: zones plus the extension zones in :data:`ALL_REGIONS`.
DEFAULT_CALIBRATIONS: dict[tuple[str, str], MarketCalibration] = {
    (region, size): _build_calibration(region, size)
    for region in ALL_REGIONS
    for size in SIZES
}


def calibration_for(region: str, size: str, **overrides) -> MarketCalibration:
    """Fetch the default calibration for a market, optionally overriding fields.

    >>> cal = calibration_for("us-east-1a", "small", calm_base_frac=0.25)
    """
    key = (region, size)
    if key not in DEFAULT_CALIBRATIONS:
        raise CalibrationError(
            f"unknown market {region}/{size}; regions={REGIONS} sizes={SIZES}"
        )
    cal = DEFAULT_CALIBRATIONS[key]
    if overrides:
        cal = replace(cal, **overrides)
    return cal
