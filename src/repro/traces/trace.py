"""The :class:`PriceTrace` step-function data structure.

A spot-price history is a right-open step function: the price set at
``times[i]`` holds on ``[times[i], times[i+1])`` and the last price holds to
``horizon``. Queries are answered through a lazily built
:class:`~repro.traces.compiled.CompiledTrace` query plan — window
aggregates become two ``searchsorted``\\ s over precomputed segment bounds
and threshold crossings hit per-threshold memoized tables — so month-long
traces with thousands of change points stay cheap even when the scheduler
interrogates them at every decision point.

The original O(n) implementations survive as ``naive_*`` methods: they are
the reference oracle for the exact-equivalence property suite
(``tests/props/test_compiled_equivalence.py``), and every public query is
guaranteed to return the bit-identical float its naive twin returns.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceFormatError
from repro.traces.compiled import CompiledTrace

__all__ = ["PriceTrace"]


class PriceTrace:
    """An immutable spot-price step function.

    Parameters
    ----------
    times:
        Strictly increasing change times in seconds; ``times[0]`` is the
        trace start.
    prices:
        Price (USD/hour) in force from each change time; same length.
    horizon:
        End of the trace's validity (seconds); must be > ``times[-1]``.

    Invariants (enforced at construction):

    * ``len(times) == len(prices) >= 1``
    * ``times`` strictly increasing, ``prices`` strictly positive and finite
    * ``horizon > times[-1]``
    """

    __slots__ = ("times", "prices", "horizon", "market", "region", "_compiled", "_bounds")

    def __init__(
        self,
        times: Sequence[float] | np.ndarray,
        prices: Sequence[float] | np.ndarray,
        horizon: float,
        *,
        market: str = "",
        region: str = "",
        bounds: np.ndarray | None = None,
    ) -> None:
        t = np.ascontiguousarray(times, dtype=np.float64)
        p = np.ascontiguousarray(prices, dtype=np.float64)
        if t.ndim != 1 or p.ndim != 1:
            raise TraceFormatError("times and prices must be 1-D")
        if t.shape != p.shape:
            raise TraceFormatError(f"length mismatch: {t.shape[0]} times vs {p.shape[0]} prices")
        if t.shape[0] == 0:
            raise TraceFormatError("trace must contain at least one point")
        if not np.all(np.isfinite(t)) or not np.all(np.isfinite(p)):
            raise TraceFormatError("times/prices must be finite")
        if np.any(np.diff(t) <= 0):
            raise TraceFormatError("times must be strictly increasing")
        if np.any(p <= 0):
            raise TraceFormatError("prices must be strictly positive")
        if horizon <= t[-1]:
            raise TraceFormatError(f"horizon {horizon} must exceed last change time {t[-1]}")
        t.setflags(write=False)
        p.setflags(write=False)
        self.times = t
        self.prices = p
        self.horizon = float(horizon)
        self.market = market
        self.region = region
        # Optional precomputed segment-bounds array (``times + [horizon]``),
        # e.g. the memory-mapped one stored inside a compiled segment file;
        # the compiled plan adopts it instead of concatenating a fresh copy.
        self._bounds = bounds
        self._compiled: CompiledTrace | None = None

    # ---------------------------------------------------------- compiled plan
    @property
    def compiled(self) -> CompiledTrace:
        """The trace's compiled query plan, built once on first use."""
        comp = self._compiled
        if comp is None:
            comp = CompiledTrace(self.times, self.prices, self.horizon, bounds=self._bounds)
            self._compiled = comp
        return comp

    def __getstate__(self):
        # The compiled plan is derived state: rebuild lazily after unpickling
        # rather than shipping index tables between processes.
        return (self.times, self.prices, self.horizon, self.market, self.region)

    def __setstate__(self, state) -> None:
        times, prices, horizon, market, region = state
        times.setflags(write=False)
        prices.setflags(write=False)
        self.times = times
        self.prices = prices
        self.horizon = horizon
        self.market = market
        self.region = region
        self._bounds = None
        self._compiled = None

    # ------------------------------------------------------------- basic info
    @property
    def start(self) -> float:
        """Trace start time in seconds."""
        return float(self.times[0])

    @property
    def duration(self) -> float:
        """Length of the trace's validity window in seconds."""
        return self.horizon - self.start

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def __repr__(self) -> str:  # pragma: no cover
        tag = f"{self.region}/{self.market}" if self.region or self.market else "trace"
        return (
            f"<PriceTrace {tag} n={len(self)} "
            f"[{self.start:.0f},{self.horizon:.0f})s "
            f"mean=${self.mean_price():.4f}/hr>"
        )

    # ----------------------------------------------------------------- lookup
    def _index_at(self, t: np.ndarray) -> np.ndarray | int:
        # ndarray method form: skips np.searchsorted's dispatch wrapper.
        idx = self.times.searchsorted(t, side="right")
        if isinstance(idx, np.ndarray):
            idx -= 1
            # Clamp in place with raw ufuncs: np.clip's dispatch (dtype
            # introspection per call) measurably taxes the batch hot path.
            np.maximum(idx, 0, out=idx)
            np.minimum(idx, len(self.times) - 1, out=idx)
            return idx
        # Scalar / 0-d query: searchsorted returned a plain integer.
        return min(max(int(idx) - 1, 0), len(self.times) - 1)

    def price_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """Price in force at time(s) ``t``.

        Times before the trace start clamp to the first price; times at or
        beyond the horizon clamp to the last price (callers normally stay in
        range — the clamps make vector post-processing forgiving).
        """
        if type(t) is float or type(t) is int:
            return self.compiled.price_at(t)
        arr = np.asarray(t, dtype=np.float64)
        out = self.prices[self._index_at(arr)]
        if np.isscalar(t) or arr.ndim == 0:
            return float(out)
        return out

    def naive_price_at(self, t: float | np.ndarray) -> float | np.ndarray:
        """Reference O(n)-array lookup (oracle for the compiled fast path)."""
        arr = np.asarray(t, dtype=np.float64)
        out = self.prices[self._index_at(arr)]
        if np.isscalar(t) or arr.ndim == 0:
            return float(out)
        return out

    def next_change_after(self, t: float) -> float | None:
        """First change time strictly after ``t``, or ``None`` if none before horizon."""
        return self.compiled.next_change_after(t)

    def naive_next_change_after(self, t: float) -> float | None:
        """Reference implementation of :meth:`next_change_after`."""
        idx = int(np.searchsorted(self.times, t, side="right"))
        if idx >= len(self.times):
            return None
        return float(self.times[idx])

    # --------------------------------------------------------------- segments
    def segments(self, t0: float | None = None, t1: float | None = None) -> Iterator[
        tuple[float, float, float]
    ]:
        """Yield ``(seg_start, seg_end, price)`` covering ``[t0, t1)``.

        Defaults to the full trace window. Segments are clipped to the
        requested window.
        """
        lo = self.start if t0 is None else max(t0, self.start)
        hi = self.horizon if t1 is None else min(t1, self.horizon)
        if hi <= lo:
            return
        comp = self.compiled
        first, last = comp.window_bounds(lo, hi)
        starts = np.maximum(comp.bounds[first:last], lo)
        ends = np.minimum(comp.bounds[first + 1 : last + 1], hi)
        keep = ends > starts
        yield from zip(
            starts[keep].tolist(),
            ends[keep].tolist(),
            self.prices[first:last][keep].tolist(),
        )

    def naive_segments(self, t0: float | None = None, t1: float | None = None) -> Iterator[
        tuple[float, float, float]
    ]:
        """Reference Python-loop implementation of :meth:`segments`."""
        lo = self.start if t0 is None else max(t0, self.start)
        hi = self.horizon if t1 is None else min(t1, self.horizon)
        if hi <= lo:
            return
        bounds = np.concatenate([self.times, [self.horizon]])
        i = int(np.clip(np.searchsorted(self.times, lo, side="right") - 1, 0, len(self.times) - 1))
        while i < len(self.times) and bounds[i] < hi:
            seg_lo = max(float(bounds[i]), lo)
            seg_hi = min(float(bounds[i + 1]), hi)
            if seg_hi > seg_lo:
                yield (seg_lo, seg_hi, float(self.prices[i]))
            i += 1

    # -------------------------------------------------------------- aggregates
    def _segment_durations(self, t0: float, t1: float) -> tuple[np.ndarray, np.ndarray]:
        """Reference (durations, prices) of segments clipped to [t0, t1).

        Clips the *full* bounds array — O(n) per call; the compiled plan
        produces the identical arrays from just the covered segments.
        """
        bounds = np.concatenate([self.times, [self.horizon]])
        lo = np.clip(bounds[:-1], t0, t1)
        hi = np.clip(bounds[1:], t0, t1)
        dur = hi - lo
        mask = dur > 0
        return dur[mask], self.prices[mask]

    def mean_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted mean price over ``[t0, t1)`` (default: whole trace)."""
        return self.compiled.mean_price(t0, t1)

    def naive_mean_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Reference implementation of :meth:`mean_price`."""
        a = self.start if t0 is None else t0
        b = self.horizon if t1 is None else t1
        dur, prices = self._segment_durations(a, b)
        total = dur.sum()
        if total <= 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(np.dot(dur, prices) / total)

    def price_std(self, t0: float | None = None, t1: float | None = None) -> float:
        """Time-weighted standard deviation of the price over the window."""
        return self.compiled.price_std(t0, t1)

    def naive_price_std(self, t0: float | None = None, t1: float | None = None) -> float:
        """Reference implementation of :meth:`price_std`."""
        a = self.start if t0 is None else t0
        b = self.horizon if t1 is None else t1
        dur, prices = self._segment_durations(a, b)
        total = dur.sum()
        if total <= 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        mean = np.dot(dur, prices) / total
        var = np.dot(dur, (prices - mean) ** 2) / total
        return float(np.sqrt(max(var, 0.0)))

    def time_above(self, threshold: float, t0: float | None = None, t1: float | None = None) -> float:
        """Total seconds in the window during which price > ``threshold``."""
        return self.compiled.time_above(threshold, t0, t1)

    def naive_time_above(
        self, threshold: float, t0: float | None = None, t1: float | None = None
    ) -> float:
        """Reference implementation of :meth:`time_above`."""
        a = self.start if t0 is None else t0
        b = self.horizon if t1 is None else t1
        dur, prices = self._segment_durations(a, b)
        return float(dur[prices > threshold].sum())

    def max_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Maximum price attained in the window."""
        return self.compiled.max_price(t0, t1)

    def naive_max_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Reference implementation of :meth:`max_price`."""
        a = self.start if t0 is None else t0
        b = self.horizon if t1 is None else t1
        dur, prices = self._segment_durations(a, b)
        if prices.size == 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(prices.max())

    def min_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Minimum price attained in the window."""
        return self.compiled.min_price(t0, t1)

    def naive_min_price(self, t0: float | None = None, t1: float | None = None) -> float:
        """Reference implementation of :meth:`min_price`."""
        a = self.start if t0 is None else t0
        b = self.horizon if t1 is None else t1
        dur, prices = self._segment_durations(a, b)
        if prices.size == 0:
            raise TraceFormatError(f"empty window [{a}, {b})")
        return float(prices.min())

    # -------------------------------------------------------------- crossings
    def crossings_above(self, threshold: float) -> np.ndarray:
        """Change times at which price transitions from <= threshold to > it.

        If the trace *starts* above the threshold, the start time is included
        as a crossing. The returned array is memoized per threshold and
        read-only — copy before mutating.
        """
        return self.compiled.crossings_above(threshold)

    def naive_crossings_above(self, threshold: float) -> np.ndarray:
        """Reference implementation of :meth:`crossings_above`."""
        above = self.prices > threshold
        rising = np.flatnonzero(above[1:] & ~above[:-1]) + 1
        out = self.times[rising]
        if above[0]:
            out = np.concatenate([[self.times[0]], out])
        return out

    def crossings_below(self, threshold: float) -> np.ndarray:
        """Change times at which price transitions from > threshold to <= it.

        Memoized per threshold; the returned array is read-only.
        """
        return self.compiled.crossings_below(threshold)

    def naive_crossings_below(self, threshold: float) -> np.ndarray:
        """Reference implementation of :meth:`crossings_below`."""
        above = self.prices > threshold
        falling = np.flatnonzero(~above[1:] & above[:-1]) + 1
        return self.times[falling]

    def first_time_above(self, threshold: float, from_t: float) -> float | None:
        """Earliest time >= ``from_t`` with price > ``threshold``, or ``None``.

        If the price is already above the threshold at ``from_t`` the answer
        is ``from_t`` itself.
        """
        return self.compiled.first_time_above(threshold, from_t)

    def naive_first_time_above(self, threshold: float, from_t: float) -> float | None:
        """Reference implementation of :meth:`first_time_above`."""
        if from_t >= self.horizon:
            return None
        if float(self.naive_price_at(from_t)) > threshold:
            return max(from_t, self.start)
        cross = self.naive_crossings_above(threshold)
        later = cross[cross > from_t]
        if later.size == 0:
            return None
        return float(later[0])

    def first_time_at_or_below(self, threshold: float, from_t: float) -> float | None:
        """Earliest time >= ``from_t`` with price <= ``threshold``, or ``None``."""
        return self.compiled.first_time_at_or_below(threshold, from_t)

    def naive_first_time_at_or_below(self, threshold: float, from_t: float) -> float | None:
        """Reference implementation of :meth:`first_time_at_or_below`."""
        if from_t >= self.horizon:
            return None
        if float(self.naive_price_at(from_t)) <= threshold:
            return max(from_t, self.start)
        cross = self.naive_crossings_below(threshold)
        later = cross[cross > from_t]
        if later.size == 0:
            return None
        return float(later[0])

    # -------------------------------------------------------------- transforms
    def resample(self, grid: np.ndarray) -> np.ndarray:
        """Sample the step function on an arbitrary time grid (vectorised)."""
        return np.asarray(self.price_at(np.asarray(grid, dtype=np.float64)))

    def regular_grid(self, step_seconds: float) -> tuple[np.ndarray, np.ndarray]:
        """Resample on a regular grid of ``step_seconds``; returns (grid, prices)."""
        if step_seconds <= 0:
            raise TraceFormatError("step must be positive")
        grid = np.arange(self.start, self.horizon, step_seconds)
        return grid, self.resample(grid)

    def slice(self, t0: float, t1: float) -> "PriceTrace":
        """A sub-trace covering ``[t0, t1)`` with the same prices."""
        if not (self.start <= t0 < t1 <= self.horizon):
            raise TraceFormatError(
                f"slice [{t0}, {t1}) outside trace [{self.start}, {self.horizon})"
            )
        comp = self.compiled
        first, last = comp.window_bounds(t0, t1)
        starts = np.maximum(comp.bounds[first:last], t0)
        ends = np.minimum(comp.bounds[first + 1 : last + 1], t1)
        keep = ends > starts
        return PriceTrace(
            starts[keep], self.prices[first:last][keep], t1,
            market=self.market, region=self.region,
        )

    def shift(self, dt: float) -> "PriceTrace":
        """The same trace translated by ``dt`` seconds."""
        return PriceTrace(
            self.times + dt, self.prices, self.horizon + dt, market=self.market, region=self.region
        )

    def scale_prices(self, factor: float) -> "PriceTrace":
        """The same trace with every price multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise TraceFormatError("scale factor must be positive")
        return PriceTrace(
            self.times, self.prices * factor, self.horizon, market=self.market, region=self.region
        )

    @staticmethod
    def constant(price: float, start: float, horizon: float, **kw: str) -> "PriceTrace":
        """A trace with a single constant price (handy in tests and baselines)."""
        return PriceTrace(np.array([start]), np.array([price]), horizon, **kw)
