"""Synthetic spot-price generation.

The price process is a **regime-switching overlay**:

* a *calm* mean-reverting lognormal process re-priced at Poisson epochs,
  clipped strictly below the on-demand price (spot is "usually cheap");
* three classes of Poisson *excursions* layered on top — blips (brief, just
  above on-demand), spikes (longer, up to ~4x on-demand) and sharp spikes
  (instantaneous jumps past the 4x bid cap). The final price at any instant
  is the maximum of the calm level and every active excursion envelope.

Cross-market correlation (Figs 8b/9b of the paper) comes from letting a
fraction of each market's excursions arrive from a **shared regional** or
**global** Poisson stream: two markets adopting the same shared arrival
spike at the same time, which is exactly the co-movement the multi-market
bidding algorithm exploits ("when one spot market has a price rise the other
markets in the same region may not experience a similar rise").

All sampling is vectorised NumPy on named RNG streams, so generating the
full 16-market catalog for a 30-day horizon takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.simulator.rng import RngStreams
from repro.traces.calibration import MarketCalibration, SpikeModel
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "Excursion",
    "TraceGenerator",
    "generate_trace",
    "sample_excursions",
    "CALM_CEILING_FRAC",
]

#: The calm leg is clipped strictly below on-demand at this fraction — the
#: refit pipeline uses the same constant to separate calm re-pricings from
#: excursion activity when estimating parameters from real archives.
CALM_CEILING_FRAC = 0.92

#: Relative heights of the ramp steps of a gradual excursion.
_RAMP_FRACTIONS = (0.45, 0.75, 1.0)
#: A gradual excursion reaches its peak within this many seconds (or a
#: quarter of its duration, whichever is smaller).
_RAMP_SPAN_S = 900.0


@dataclass(frozen=True)
class Excursion:
    """One price excursion: piecewise-constant envelope over [start, end)."""

    start: float
    end: float
    step_times: np.ndarray  #: absolute times of internal steps (start included)
    step_prices: np.ndarray  #: price in force from each step time

    def envelope_at(self, t: np.ndarray) -> np.ndarray:
        """Envelope price at times ``t``; -inf outside [start, end)."""
        out = np.full(t.shape, -np.inf)
        mask = (t >= self.start) & (t < self.end)
        if np.any(mask):
            idx = np.clip(
                np.searchsorted(self.step_times, t[mask], side="right") - 1,
                0,
                len(self.step_times) - 1,
            )
            out[mask] = self.step_prices[idx]
        return out

    @property
    def peak(self) -> float:
        return float(self.step_prices.max())


def _lognormal_mean_sigma(rng: np.random.Generator, mean: float, sigma: float, n: int) -> np.ndarray:
    """Draw lognormal samples with the given *arithmetic* mean."""
    mu = np.log(mean) - 0.5 * sigma * sigma
    return rng.lognormal(mu, sigma, size=n)


def sample_excursions(
    rng: np.random.Generator,
    model: SpikeModel,
    starts: np.ndarray,
    on_demand: float,
    horizon: float,
    calm_level: float,
) -> list[Excursion]:
    """Materialise excursions at the given start times.

    Peaks and durations are drawn from ``rng`` (one draw per start, in start
    order, so a market's attribute stream is deterministic). Durations are
    clamped to the horizon.
    """
    n = len(starts)
    if n == 0:
        return []
    durations = _lognormal_mean_sigma(rng, model.duration_mean_s, model.duration_sigma, n)
    peaks = rng.uniform(model.peak_lo_frac, model.peak_hi_frac, size=n) * on_demand
    jitters = rng.uniform(0.97, 1.03, size=(n, 2))
    out: list[Excursion] = []
    for i in range(n):
        s = float(starts[i])
        e = min(float(s + max(durations[i], 30.0)), horizon)
        if e <= s:
            continue
        peak = float(peaks[i])
        if model.sharp:
            # Jump straight to the peak; a mid-life jitter keeps the trace
            # from looking unnaturally flat.
            mid = s + 0.5 * (e - s)
            times = np.array([s, mid])
            prices = np.array([peak, peak * jitters[i, 0]])
        else:
            ramp = min(_RAMP_SPAN_S, 0.25 * (e - s))
            base = min(calm_level, peak)
            times_l = [s + f * ramp for f in (0.0, 0.5, 1.0)]
            prices_l = [base + f * (peak - base) for f in _RAMP_FRACTIONS]
            hold_mid = times_l[-1] + 0.5 * (e - times_l[-1])
            times_l.append(hold_mid)
            prices_l.append(peak * jitters[i, 1])
            times = np.array(times_l)
            prices = np.array(prices_l)
        keep = times < e
        out.append(Excursion(start=s, end=e, step_times=times[keep], step_prices=prices[keep]))
    return out


def _poisson_starts(rng: np.random.Generator, rate_per_hour: float, horizon: float) -> np.ndarray:
    """Start times of a homogeneous Poisson process on [0, horizon)."""
    lam = rate_per_hour * horizon / SECONDS_PER_HOUR
    n = rng.poisson(lam)
    return np.sort(rng.uniform(0.0, horizon, size=n))


class TraceGenerator:
    """Generates :class:`PriceTrace` objects for calibrated markets.

    Parameters
    ----------
    streams:
        Named RNG registry; each market consumes streams under
        ``trace/<region>/<size>/...`` so markets are independent and stable
        under refactoring.
    horizon:
        Trace length in seconds (paper uses month-long traces).
    """

    def __init__(self, streams: RngStreams, horizon: float) -> None:
        if horizon <= SECONDS_PER_HOUR:
            raise CalibrationError("horizon must exceed one hour")
        self.streams = streams
        self.horizon = float(horizon)
        # Shared shock start-times are drawn lazily per region & class and
        # cached so every market in the region sees the same arrivals.
        self._regional_shocks: dict[tuple[str, str], np.ndarray] = {}
        self._global_shocks: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------ shared shocks
    #: Upper-bound arrival rates (per hour) of the shared streams, per class.
    #: Individual markets thin these down to their own adopted rate.
    _SHARED_RATE = {"blips": 0.0070, "spikes": 0.0060, "sharp_spikes": 0.0012}

    def _shared_starts(self, scope: str, cls: str) -> np.ndarray:
        """Arrivals of the shared stream for ``scope`` ('global' or a region)."""
        if scope == "global":
            cached = self._global_shocks.get(cls)
            if cached is None:
                rng = self.streams.get(f"shock/global/{cls}")
                cached = _poisson_starts(rng, self._SHARED_RATE[cls], self.horizon)
                self._global_shocks[cls] = cached
            return cached
        key = (scope, cls)
        cached = self._regional_shocks.get(key)
        if cached is None:
            rng = self.streams.get(f"shock/{scope}/{cls}")
            cached = _poisson_starts(rng, self._SHARED_RATE[cls], self.horizon)
            self._regional_shocks[key] = cached
        return cached

    # ------------------------------------------------------------- turbulence
    def _turbulence_intervals(self, cal: MarketCalibration) -> np.ndarray:
        """Turbulent episodes of one market as an (n, 2) array of [start, end).

        Episodes are shared by every excursion class of the market, so a
        turbulent stretch raises blip, spike and sharp-spike intensity
        together — the burstiness the multi-market scheduler sidesteps by
        leaving a hot market (Fig 8c).
        """
        key = (f"{cal.region}/{cal.size}", "turbulence")
        cached = self._regional_shocks.get(key)
        if cached is not None:
            return cached
        rng = self.streams.get(f"trace/{cal.region}/{cal.size}/turbulence")
        intervals: list[tuple[float, float]] = []
        turbulent = bool(rng.uniform() < cal.turbulent_fraction())
        t = 0.0
        while t < self.horizon:
            mean = cal.turbulent_mean_s if turbulent else cal.quiet_mean_s
            dur = float(rng.exponential(mean))
            if turbulent:
                intervals.append((t, min(t + dur, self.horizon)))
            t += dur
            turbulent = not turbulent
        out = np.array(intervals).reshape(-1, 2)
        self._regional_shocks[key] = out
        return out

    def _in_turbulence(self, cal: MarketCalibration, times: np.ndarray) -> np.ndarray:
        iv = self._turbulence_intervals(cal)
        mask = np.zeros(times.shape, dtype=bool)
        for start, end in iv:
            mask |= (times >= start) & (times < end)
        return mask

    def _adopted_starts(
        self, cal: MarketCalibration, cls: str, model: SpikeModel
    ) -> np.ndarray:
        """Start times for one excursion class of one market.

        Composition: own independent stream — a turbulence-modulated Poisson
        process at mean rate ``rate*(1 - r - g)`` — plus thinned adoptions
        from the regional stream (target rate ``rate*r``) and global stream
        (``rate*g``).
        """
        rng = self.streams.get(f"trace/{cal.region}/{cal.size}/{cls}")
        own_rate = model.rate_per_hour * (1 - cal.regional_shock_share - cal.global_shock_share)
        # Thinning construction of the modulated process: generate at the
        # turbulent (peak) rate, then keep quiet-period arrivals with
        # probability quiet_mult / turbulent_mult.
        candidates = _poisson_starts(rng, own_rate * cal.turbulent_mult, self.horizon)
        if candidates.size:
            hot = self._in_turbulence(cal, candidates)
            keep_p = np.where(hot, 1.0, cal.quiet_rate_mult() / cal.turbulent_mult)
            candidates = candidates[rng.uniform(size=candidates.size) < keep_p]
        parts = [candidates]
        for scope, share in (
            (cal.region, cal.regional_shock_share),
            ("global", cal.global_shock_share),
        ):
            shared = self._shared_starts(scope, cls)
            target = model.rate_per_hour * share
            cap = self._SHARED_RATE[cls]
            accept_p = min(1.0, target / cap) if cap > 0 else 0.0
            if shared.size and accept_p > 0:
                keep = rng.uniform(size=shared.size) < accept_p
                parts.append(shared[keep])
        return np.sort(np.concatenate(parts))

    # ---------------------------------------------------------------- calm leg
    #: Stationary std and AR(1) coefficient of the shared calm drifts. The
    #: regional drift induces the intra-region correlation of Fig 8b; the
    #: weaker global drift induces the (lower) cross-region correlation of
    #: Fig 9b. Both are slow-moving (phi close to 1) hourly processes.
    _REGIONAL_DRIFT_STD = 0.16
    _GLOBAL_DRIFT_STD = 0.10
    _DRIFT_PHI = 0.985

    def _shared_drift(self, scope: str, std: float) -> tuple[np.ndarray, np.ndarray]:
        """Hourly-grid AR(1) log-price drift shared by every market in scope."""
        key = (scope, "calm-drift")
        cached = self._regional_shocks.get(key)
        if cached is None:
            rng = self.streams.get(f"shock/{scope}/calm-drift")
            grid = np.arange(0.0, self.horizon + SECONDS_PER_HOUR, SECONDS_PER_HOUR)
            n = len(grid)
            phi = self._DRIFT_PHI
            innov = rng.normal(0.0, std * np.sqrt(1.0 - phi * phi), size=n)
            x = np.empty(n)
            x[0] = rng.normal(0.0, std)
            for i in range(1, n):
                x[i] = phi * x[i - 1] + innov[i]
            cached = np.vstack([grid, x])
            self._regional_shocks[key] = cached
        return cached[0], cached[1]

    def _drift_at(self, scope: str, std: float, times: np.ndarray) -> np.ndarray:
        grid, values = self._shared_drift(scope, std)
        idx = np.clip(np.searchsorted(grid, times, side="right") - 1, 0, len(grid) - 1)
        return values[idx]

    def _calm_process(self, cal: MarketCalibration) -> tuple[np.ndarray, np.ndarray]:
        """Times and prices of the calm (below on-demand) leg."""
        rng = self.streams.get(f"trace/{cal.region}/{cal.size}/calm")
        change_times = _poisson_starts(rng, cal.calm_change_rate_per_hour, self.horizon)
        times = np.concatenate([[0.0], change_times[change_times > 0.0]])
        n = len(times)
        # AR(1) in log space with stationary std = calm_sigma.
        phi = 1.0 - cal.calm_reversion
        innov_std = cal.calm_sigma * np.sqrt(max(1.0 - phi * phi, 1e-12))
        eps = rng.normal(0.0, innov_std, size=n)
        x = np.empty(n)
        x[0] = rng.normal(0.0, cal.calm_sigma)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + eps[i]
        # Shared slow drifts induce the weak co-movement of Figs 8b/9b.
        x += self._drift_at(cal.region, self._REGIONAL_DRIFT_STD, times)
        x += self._drift_at("global", self._GLOBAL_DRIFT_STD, times)
        base = cal.calm_base_frac * cal.on_demand
        prices = base * np.exp(x)
        floor = cal.price_floor_frac * cal.on_demand
        ceiling = CALM_CEILING_FRAC * cal.on_demand  # calm leg never crosses on-demand
        return times, np.clip(prices, floor, ceiling)

    # --------------------------------------------------------------- assembly
    def generate(self, cal: MarketCalibration) -> PriceTrace:
        """Generate the full trace for one calibrated market."""
        calm_times, calm_prices = self._calm_process(cal)
        calm_level = cal.calm_base_frac * cal.on_demand

        excursions: list[Excursion] = []
        for cls in ("blips", "spikes", "sharp_spikes"):
            model: SpikeModel = getattr(cal, cls)
            starts = self._adopted_starts(cal, cls, model)
            rng = self.streams.get(f"trace/{cal.region}/{cal.size}/{cls}/attrs")
            excursions.extend(
                sample_excursions(rng, model, starts, cal.on_demand, self.horizon, calm_level)
            )

        # Breakpoints: calm changes plus every excursion step/end.
        pieces = [calm_times]
        for exc in excursions:
            pieces.append(exc.step_times)
            pieces.append(np.array([exc.end]))
        bp = np.unique(np.concatenate(pieces))
        bp = bp[(bp >= 0.0) & (bp < self.horizon)]
        if bp.size == 0 or bp[0] != 0.0:
            bp = np.concatenate([[0.0], bp])

        idx = np.clip(np.searchsorted(calm_times, bp, side="right") - 1, 0, len(calm_times) - 1)
        price = calm_prices[idx].copy()
        if excursions:
            # One sorted-events sweep over every excursion's constant pieces
            # instead of a per-excursion envelope_at pass: each step price
            # holds on [step_time, next_step_or_end), every such endpoint is
            # a breakpoint, so a piece covers exactly the bp slice between
            # the two searchsorted positions. Scatter-max of piece prices is
            # order-independent, hence bit-identical to the merge loop.
            lo_t = np.concatenate([exc.step_times for exc in excursions])
            hi_t = np.concatenate(
                [np.append(exc.step_times[1:], exc.end) for exc in excursions]
            )
            pr = np.concatenate([exc.step_prices for exc in excursions])
            lo_idx = np.searchsorted(bp, lo_t, side="left")
            lens = np.searchsorted(bp, hi_t, side="left") - lo_idx
            covered = lens > 0
            if np.any(covered):
                lo_idx, lens, pr = lo_idx[covered], lens[covered], pr[covered]
                flat = np.repeat(lo_idx, lens) + (
                    np.arange(int(lens.sum())) - np.repeat(np.cumsum(lens) - lens, lens)
                )
                np.maximum.at(price, flat, np.repeat(pr, lens))

        floor = cal.price_floor_frac * cal.on_demand
        np.clip(price, floor, None, out=price)

        # Compress runs of identical prices to keep the trace minimal.
        keep = np.concatenate([[True], np.diff(price) != 0.0])
        return PriceTrace(
            bp[keep],
            price[keep],
            self.horizon,
            market=cal.size,
            region=cal.region,
        )


def generate_trace(
    cal: MarketCalibration,
    horizon: float,
    seed: int = 0,
    streams: RngStreams | None = None,
) -> PriceTrace:
    """Convenience wrapper: generate a single market's trace.

    Without a shared :class:`RngStreams`, cross-market correlation streams
    are still consistent for the same seed, so traces produced one at a time
    match those from :func:`repro.traces.catalog.build_catalog`.
    """
    gen = TraceGenerator(streams or RngStreams(seed), horizon)
    return gen.generate(cal)
