"""Statistics over price traces: correlation, dispersion, threshold dwell.

These implement the analyses behind Figure 8(b) (intra-region correlation),
Figure 9(b) (cross-region correlation), Figure 10 (price standard deviation
per region/size) and the pure-spot availability argument of Figure 11(b)
(fraction of time the price sits above a bid).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.errors import TraceError
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "trace_correlation",
    "correlation_matrix",
    "mean_pairwise_correlation",
    "price_std",
    "time_above_fraction",
    "TraceSummary",
    "summarize_trace",
    "ExcursionEpisode",
    "excursion_episodes",
    "calm_profile",
    "weighted_quantile",
    "calm_price_quantile",
    "calm_change_rate_per_hour",
]

#: Resampling grid used for correlation estimates (5 minutes, fine enough to
#: see every excursion while keeping month-long vectors small).
DEFAULT_GRID_STEP_S = 300.0


def _common_grid(traces: Sequence[PriceTrace], step: float) -> np.ndarray:
    start = max(t.start for t in traces)
    stop = min(t.horizon for t in traces)
    if stop - start < 2 * step:
        raise TraceError("traces do not overlap enough to correlate")
    return np.arange(start, stop, step)


def trace_correlation(a: PriceTrace, b: PriceTrace, step: float = DEFAULT_GRID_STEP_S) -> float:
    """Pearson correlation of two price series resampled on a common grid.

    Degenerate (constant) series yield correlation 0 by convention.
    """
    grid = _common_grid([a, b], step)
    xa = a.resample(grid)
    xb = b.resample(grid)
    sa, sb = xa.std(), xb.std()
    if sa <= 0 or sb <= 0:
        return 0.0
    return float(np.corrcoef(xa, xb)[0, 1])


def correlation_matrix(
    traces: Sequence[PriceTrace], step: float = DEFAULT_GRID_STEP_S
) -> np.ndarray:
    """Full pairwise Pearson correlation matrix (diagonal = 1)."""
    if len(traces) < 2:
        raise TraceError("need at least two traces")
    grid = _common_grid(traces, step)
    mat = np.vstack([t.resample(grid) for t in traces])
    stds = mat.std(axis=1)
    out = np.eye(len(traces))
    for i, j in combinations(range(len(traces)), 2):
        if stds[i] <= 0 or stds[j] <= 0:
            c = 0.0
        else:
            c = float(np.corrcoef(mat[i], mat[j])[0, 1])
        out[i, j] = out[j, i] = c
    return out


def mean_pairwise_correlation(
    traces: Sequence[PriceTrace], step: float = DEFAULT_GRID_STEP_S
) -> float:
    """Mean of the off-diagonal pairwise correlations (Figs 8b / 9b bars)."""
    mat = correlation_matrix(traces, step)
    n = mat.shape[0]
    iu = np.triu_indices(n, k=1)
    return float(mat[iu].mean())


def price_std(trace: PriceTrace) -> float:
    """Time-weighted standard deviation of the spot price (Fig 10 bars)."""
    return trace.price_std()


def time_above_fraction(trace: PriceTrace, threshold: float) -> float:
    """Fraction of the trace's window during which price > ``threshold``.

    With a bid of ``threshold``, a pure-spot tenant is revoked (and the
    service unavailable) for exactly this fraction of time, modulo
    re-acquisition latency — the Figure 11(b) argument.
    """
    return trace.time_above(threshold) / trace.duration


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of one market trace."""

    market: str
    region: str
    duration_hours: float
    mean_price: float
    std_price: float
    min_price: float
    max_price: float
    n_changes: int
    changes_per_hour: float
    frac_above_od: float
    excursions_above_od: int

    def row(self) -> tuple:
        return (
            self.region,
            self.market,
            self.mean_price,
            self.std_price,
            self.max_price,
            self.frac_above_od,
        )


@dataclass(frozen=True)
class ExcursionEpisode:
    """One maximal interval during which price > threshold."""

    start: float
    end: float
    peak: float

    @property
    def duration_s(self) -> float:
        return self.end - self.start


def excursion_episodes(trace: PriceTrace, threshold: float) -> list[ExcursionEpisode]:
    """Maximal above-threshold episodes of a trace, in time order.

    The building block of the calibration refit: each episode's duration
    and peak feed the per-class (blip / spike / sharp-spike) parameter
    fits. An episode still open at the horizon is clipped there. Uses the
    compiled crossing tables, so the scan is O(episodes · log n).
    """
    out: list[ExcursionEpisode] = []
    for start in trace.crossings_above(threshold):
        s = float(start)
        end = trace.first_time_at_or_below(threshold, s)
        e = trace.horizon if end is None else float(end)
        out.append(ExcursionEpisode(start=s, end=e, peak=trace.max_price(s, e)))
    return out


def calm_profile(trace: PriceTrace, threshold: float) -> tuple[np.ndarray, np.ndarray]:
    """``(durations, prices)`` of the trace's at-or-below-threshold segments.

    The time-weighted view of the calm regime: every segment whose price
    sits at or below ``threshold``, with its clipped duration — the raw
    material for calm-level quantiles and dispersion estimates.
    """
    dur, prices = trace.compiled.window(trace.start, trace.horizon)
    mask = prices <= threshold
    return dur[mask], prices[mask]


def weighted_quantile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Quantile ``q`` of ``values`` under non-negative ``weights``."""
    if not 0.0 <= q <= 1.0:
        raise TraceError(f"quantile must be in [0, 1], got {q}")
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.size == 0 or weights.sum() <= 0:
        raise TraceError("weighted quantile of an empty/zero-weight sample")
    order = np.argsort(values, kind="stable")
    v, w = values[order], weights[order]
    cum = np.cumsum(w)
    idx = int(np.searchsorted(cum, q * cum[-1], side="left"))
    return float(v[min(idx, v.size - 1)])


def calm_price_quantile(trace: PriceTrace, q: float, threshold: float) -> float:
    """Time-weighted quantile of the calm (price <= threshold) regime."""
    dur, prices = calm_profile(trace, threshold)
    return weighted_quantile(prices, dur, q)


def calm_change_rate_per_hour(trace: PriceTrace, threshold: float) -> float:
    """Calm re-pricings per hour of calm time.

    Counts change points whose new price is at or below ``threshold`` and
    normalises by the time actually spent there, estimating the calm
    leg's Poisson re-pricing intensity independently of excursion load.
    """
    calm_changes = int(np.count_nonzero(trace.prices <= threshold))
    calm_time_s = trace.duration - trace.time_above(threshold)
    if calm_time_s <= 0:
        return 0.0
    return calm_changes / (calm_time_s / SECONDS_PER_HOUR)


def summarize_trace(trace: PriceTrace, on_demand: float) -> TraceSummary:
    """Compute a :class:`TraceSummary` for one market against its on-demand price."""
    dur_h = trace.duration / SECONDS_PER_HOUR
    return TraceSummary(
        market=trace.market,
        region=trace.region,
        duration_hours=dur_h,
        mean_price=trace.mean_price(),
        std_price=trace.price_std(),
        min_price=trace.min_price(),
        max_price=trace.max_price(),
        n_changes=len(trace),
        changes_per_hour=len(trace) / dur_h,
        frac_above_od=time_above_fraction(trace, on_demand),
        excursions_above_od=int(len(trace.crossings_above(on_demand))),
    )
