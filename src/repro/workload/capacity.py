"""Capacity inflation and cost savings under nested overheads (Section 6.2).

The spot savings are earned by nested VMs; if the nested hypervisor costs
CPU capacity, a CPU-bound service needs proportionally more servers to
carry the same load, which eats into the savings:

    effective_cost% = normalized_cost% * capacity_factor
    savings%        = 100 - effective_cost%

Disk- and network-bound services see a capacity factor near 1 (Table 4) and
keep essentially all the savings; the paper's worst case halves performance
(factor 2), shrinking the savings of a 17-33 % deployment accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.vm.nested import NestedOverheadModel

__all__ = ["CapacityModel", "savings_with_overhead"]

#: Section 6.2's worst case: "in the worst case, performance may be halved".
WORST_CASE_CAPACITY_FACTOR = 2.0


@dataclass(frozen=True)
class CapacityModel:
    """Capacity factor of a service mix under nested virtualization.

    ``cpu_fraction`` is the share of the service's provisioned capacity
    that is CPU-bound (the rest is I/O-bound and near-native).
    """

    overheads: NestedOverheadModel = field(default_factory=NestedOverheadModel)
    cpu_fraction: float = 1.0
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.cpu_fraction <= 1:
            raise WorkloadError("cpu fraction must be in [0, 1]")
        if not 0 <= self.utilization <= 1:
            raise WorkloadError("utilization must be in [0, 1]")

    def capacity_factor(self) -> float:
        """How many times more capacity the nested deployment needs."""
        io_factor = 1.0 / min(self.overheads.disk_factor, self.overheads.network_factor)
        cpu_factor = self.overheads.cpu_overhead(self.utilization)
        return self.cpu_fraction * cpu_factor + (1 - self.cpu_fraction) * io_factor


def savings_with_overhead(normalized_cost_percent: float, capacity_factor: float) -> float:
    """Savings (percent of baseline) after inflating capacity.

    >>> savings_with_overhead(25.0, 2.0)
    50.0
    """
    if normalized_cost_percent < 0:
        raise WorkloadError("normalized cost must be >= 0")
    if capacity_factor < 1:
        raise WorkloadError("capacity factor must be >= 1")
    return 100.0 - normalized_cost_percent * capacity_factor
