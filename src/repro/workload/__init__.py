"""Workload substrate: TPC-W queueing model and I/O micro-benchmarks.

Section 6 of the paper quantifies nested-virtualization overheads with
iperf (network), dd (disk) and TPC-W (an emulated e-commerce site driven by
closed-loop emulated browsers). We reproduce those experiments with:

* :mod:`repro.workload.queueing` — exact Mean Value Analysis of a closed
  multi-station queueing network;
* :mod:`repro.workload.tpcw` — the TPC-W site modelled as CPU + disk +
  network stations with the browsing/ordering mix, native vs nested;
* :mod:`repro.workload.iperf` / :mod:`repro.workload.diskbench` — throughput
  micro-benchmark simulators (Table 4);
* :mod:`repro.workload.capacity` — the Section 6.2 capacity-inflation /
  cost-savings arithmetic.
"""

from repro.workload.queueing import ClosedNetwork, Station, mva
from repro.workload.tpcw import TpcwConfig, TpcwModel, TpcwPoint
from repro.workload.iperf import IperfSimulator, IperfResult
from repro.workload.diskbench import DiskBenchSimulator, DiskBenchResult
from repro.workload.capacity import CapacityModel, savings_with_overhead
from repro.workload.multiclass import (
    CustomerClass,
    MultiClassNetwork,
    MultiClassSolution,
    multiclass_mva,
    tpcw_two_class_network,
)

__all__ = [
    "ClosedNetwork",
    "Station",
    "mva",
    "TpcwConfig",
    "TpcwModel",
    "TpcwPoint",
    "IperfSimulator",
    "IperfResult",
    "DiskBenchSimulator",
    "DiskBenchResult",
    "CapacityModel",
    "savings_with_overhead",
    "CustomerClass",
    "MultiClassNetwork",
    "MultiClassSolution",
    "multiclass_mva",
    "tpcw_two_class_network",
]
