"""TPC-W (emulated e-commerce site) response-time model — Figure 12.

TPC-W drives a multi-tier shopping site with N closed-loop *emulated
browsers* (EBs): each thinks ~7 s, issues an interaction, and waits for the
response. The paper runs the "ordering" mix (50 % browsing / 50 % ordering)
against a Java-servlet site on an m3.medium, natively and inside a
Xen-Blanket nested VM, in two configurations:

* **images fetched** — browsers download embedded images from the server:
  the interaction is network/IO-heavy and the NIC is the bottleneck. Since
  nested I/O runs at native speed (Table 4), the curves coincide
  (Fig 12a).
* **images not fetched** (served by a CDN) — the interaction is CPU-bound:
  the nested hypervisor's extra VM exits inflate CPU demand with load, and
  response time degrades by up to ~50 % under high load (Fig 12b).

The site is modelled as a closed network (CPU, disk, NIC stations + think
time) solved by exact MVA; the nested CPU overhead is applied as a
utilization-dependent demand multiplier resolved by fixed-point iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import WorkloadError
from repro.vm.nested import NestedOverheadModel
from repro.workload.queueing import ClosedNetwork, Station, mva_sweep

__all__ = ["TpcwConfig", "TpcwPoint", "TpcwModel"]

#: TPC-W's specified mean think time.
DEFAULT_THINK_S = 7.0


@dataclass(frozen=True)
class TpcwConfig:
    """Service demands (seconds per interaction) of the TPC-W deployment.

    The two paper configurations differ only in the network demand: with
    image fetching the NIC carries ~50 KB of images per interaction and
    dominates; without it only the base page moves.
    """

    cpu_demand_s: float = 0.032
    disk_demand_s: float = 0.012
    net_demand_images_s: float = 0.065
    net_demand_no_images_s: float = 0.010
    think_s: float = DEFAULT_THINK_S
    fetch_images: bool = True
    overheads: NestedOverheadModel = field(
        default_factory=lambda: NestedOverheadModel(
            cpu_overhead_idle=1.05, cpu_overhead_peak=1.25
        )
    )

    def __post_init__(self) -> None:
        for v in (
            self.cpu_demand_s,
            self.disk_demand_s,
            self.net_demand_images_s,
            self.net_demand_no_images_s,
        ):
            if v < 0:
                raise WorkloadError("service demands must be >= 0")
        if self.think_s < 0:
            raise WorkloadError("think time must be >= 0")

    @property
    def net_demand_s(self) -> float:
        return self.net_demand_images_s if self.fetch_images else self.net_demand_no_images_s


@dataclass(frozen=True)
class TpcwPoint:
    """One point of a response-time curve."""

    emulated_browsers: int
    response_time_ms: float
    throughput_per_s: float
    cpu_utilization: float
    bottleneck: str


class TpcwModel:
    """Solves the TPC-W network natively or nested."""

    #: Fixed-point iterations for the utilization-dependent CPU overhead.
    FP_ITERATIONS = 6

    def __init__(self, config: TpcwConfig) -> None:
        self.config = config

    def _network(self, cpu_mult: float, nested: bool) -> ClosedNetwork:
        c = self.config
        disk_mult = 1.0 / c.overheads.disk_factor if nested else 1.0
        net_mult = 1.0 / c.overheads.network_factor if nested else 1.0
        return ClosedNetwork(
            stations=(
                Station("cpu", c.cpu_demand_s * cpu_mult),
                Station("disk", c.disk_demand_s * disk_mult),
                Station("net", c.net_demand_s * net_mult),
            ),
            think_time_s=c.think_s,
        )

    def solve(self, emulated_browsers: int, nested: bool) -> TpcwPoint:
        """Exact solution at one EB population."""
        return self.response_curve([emulated_browsers], nested)[0]

    def response_curve(self, populations: Sequence[int], nested: bool) -> List[TpcwPoint]:
        """Response time vs EB count, native or nested (Fig 12 series)."""
        c = self.config
        cpu_mult = c.overheads.cpu_overhead_idle if nested else 1.0
        # Fixed point: overhead depends on utilization, which depends on
        # throughput, which depends on overhead. A handful of iterations
        # converges because overhead(u) is monotone and bounded.
        sols = None
        for _ in range(self.FP_ITERATIONS if nested else 1):
            net = self._network(cpu_mult, nested)
            sols = mva_sweep(net, populations)
            if not nested:
                break
            u_max = min(1.0, sols[-1].throughput_per_s * c.cpu_demand_s)
            cpu_mult = c.overheads.cpu_overhead(u_max)
        assert sols is not None
        net = self._network(cpu_mult, nested)
        out: List[TpcwPoint] = []
        for sol in sols:
            u = min(1.0, sol.throughput_per_s * c.cpu_demand_s * cpu_mult)
            out.append(
                TpcwPoint(
                    emulated_browsers=sol.population,
                    response_time_ms=sol.response_time_s * 1000.0,
                    throughput_per_s=sol.throughput_per_s,
                    cpu_utilization=u,
                    bottleneck=net.stations[sol.bottleneck_index].name,
                )
            )
        return out

    def degradation_percent(self, emulated_browsers: int) -> float:
        """Nested-over-native response-time inflation at one load, in %."""
        native = self.solve(emulated_browsers, nested=False)
        nested = self.solve(emulated_browsers, nested=True)
        if native.response_time_ms <= 0:
            return 0.0
        return (nested.response_time_ms / native.response_time_ms - 1.0) * 100.0
