"""Exact multi-class Mean Value Analysis.

TPC-W's "ordering" mix actually drives two customer classes — 50 % of
browsers only browse (light CPU, image-heavy I/O) and 50 % execute order
transactions (heavier CPU and disk for payment/inventory writes). The
single-class model in :mod:`repro.workload.tpcw` blends them; this module
solves the classes exactly, so per-class response times (what a latency
SLO is written against) are available.

The exact multi-class MVA recursion (Reiser & Lavenberg) runs over the
lattice of population vectors ``(n_1, ..., n_C)``:

    R_{c,k}(N)  = D_{c,k} * (1 + Q_k(N - e_c))      (queueing station)
    X_c(N)      = n_c / (Z_c + sum_k R_{c,k}(N))
    Q_k(N)      = sum_c X_c(N) * R_{c,k}(N)

Complexity is O(prod_c (n_c + 1) * C * K) — exact and fine for TPC-W-size
populations (hundreds per class).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import WorkloadError

__all__ = ["CustomerClass", "MultiClassNetwork", "MultiClassSolution", "multiclass_mva"]


@dataclass(frozen=True)
class CustomerClass:
    """One closed customer class.

    ``demands_s`` maps station index -> service demand per interaction.
    """

    name: str
    population: int
    think_time_s: float
    demands_s: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.population < 0:
            raise WorkloadError(f"negative population for class {self.name}")
        if self.think_time_s < 0:
            raise WorkloadError(f"negative think time for class {self.name}")
        if any(d < 0 for d in self.demands_s):
            raise WorkloadError(f"negative demand in class {self.name}")


@dataclass(frozen=True)
class MultiClassNetwork:
    """Stations (by name) plus the customer classes that visit them."""

    station_names: Tuple[str, ...]
    classes: Tuple[CustomerClass, ...]

    def __post_init__(self) -> None:
        if not self.station_names:
            raise WorkloadError("need at least one station")
        if not self.classes:
            raise WorkloadError("need at least one class")
        k = len(self.station_names)
        for c in self.classes:
            if len(c.demands_s) != k:
                raise WorkloadError(
                    f"class {c.name} has {len(c.demands_s)} demands; "
                    f"network has {k} stations"
                )


@dataclass(frozen=True)
class MultiClassSolution:
    """Exact solution at the full population vector."""

    throughput_per_s: Tuple[float, ...]  #: per class
    response_time_s: Tuple[float, ...]  #: per class, excluding think time
    station_queues: Tuple[float, ...]  #: total mean queue per station

    def class_response_ms(self, idx: int) -> float:
        return self.response_time_s[idx] * 1000.0


def multiclass_mva(network: MultiClassNetwork) -> MultiClassSolution:
    """Exact multi-class MVA at the network's full population vector."""
    classes = network.classes
    k = len(network.station_names)
    c_n = len(classes)
    demands = np.array([c.demands_s for c in classes])  # (C, K)
    pops = tuple(c.population for c in classes)
    thinks = np.array([c.think_time_s for c in classes])

    # queue lengths indexed by population vector
    queues: Dict[Tuple[int, ...], np.ndarray] = {
        tuple([0] * c_n): np.zeros(k)
    }
    x_final = np.zeros(c_n)
    r_final = np.zeros(c_n)

    # iterate the lattice in non-decreasing total-population order
    ranges = [range(p + 1) for p in pops]
    lattice = sorted(itertools.product(*ranges), key=sum)
    for n_vec in lattice:
        if sum(n_vec) == 0:
            continue
        r = np.zeros((c_n, k))
        for c in range(c_n):
            if n_vec[c] == 0:
                continue
            prev = list(n_vec)
            prev[c] -= 1
            q_prev = queues[tuple(prev)]
            r[c] = demands[c] * (1.0 + q_prev)
        x = np.zeros(c_n)
        for c in range(c_n):
            if n_vec[c] == 0:
                continue
            cycle = thinks[c] + r[c].sum()
            x[c] = n_vec[c] / cycle if cycle > 0 else 0.0
        queues[n_vec] = (x[:, None] * r).sum(axis=0)
        if n_vec == pops:
            x_final = x
            r_final = r.sum(axis=1)

    return MultiClassSolution(
        throughput_per_s=tuple(float(v) for v in x_final),
        response_time_s=tuple(float(v) for v in r_final),
        station_queues=tuple(float(v) for v in queues[pops]),
    )


def tpcw_two_class_network(
    total_ebs: int,
    browse_fraction: float = 0.5,
    fetch_images: bool = True,
    nested_cpu_mult: float = 1.0,
) -> MultiClassNetwork:
    """The TPC-W ordering mix as two explicit classes.

    Browsers are network/image heavy; orderers add CPU (business logic)
    and disk (transactional writes). ``nested_cpu_mult`` inflates CPU
    demands for a nested deployment.
    """
    if not 0 <= browse_fraction <= 1:
        raise WorkloadError("browse fraction must be in [0, 1]")
    if total_ebs < 2:
        raise WorkloadError("need at least two emulated browsers")
    n_browse = int(round(total_ebs * browse_fraction))
    n_order = total_ebs - n_browse
    net_b = 0.085 if fetch_images else 0.012
    net_o = 0.045 if fetch_images else 0.008
    browse = CustomerClass(
        name="browsing",
        population=n_browse,
        think_time_s=7.0,
        demands_s=(0.022 * nested_cpu_mult, 0.008, net_b),
    )
    order = CustomerClass(
        name="ordering",
        population=n_order,
        think_time_s=7.0,
        demands_s=(0.042 * nested_cpu_mult, 0.016, net_o),
    )
    return MultiClassNetwork(
        station_names=("cpu", "disk", "net"), classes=(browse, order)
    )
