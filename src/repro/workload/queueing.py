"""Exact Mean Value Analysis (MVA) for closed product-form networks.

The TPC-W benchmark drives a fixed population of N emulated browsers, each
cycling: think for Z seconds, submit a request, wait for the response. That
is the canonical *closed* queueing network, solved exactly by Reiser &
Lavenberg's MVA recursion for product-form networks:

    R_k(n)   = D_k * (1 + Q_k(n-1))        (queueing station)
    R_k(n)   = D_k                          (delay/infinite-server station)
    X(n)     = n / (Z + sum_k R_k(n))
    Q_k(n)   = X(n) * R_k(n)

where ``D_k`` is the service demand at station ``k``. The recursion is
O(N * K) and exact — no simulation noise — which suits the smooth response
curves of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError

__all__ = ["Station", "ClosedNetwork", "MvaSolution", "mva"]


@dataclass(frozen=True)
class Station:
    """One service station.

    Attributes
    ----------
    name:
        Label used in reports.
    demand_s:
        Total service demand per request interaction (seconds).
    servers:
        1 for a queueing station; values > 1 approximate a multi-server
        station by demand scaling (standard MVA approximation); use
        ``delay=True`` for pure delay (infinite-server) resources.
    delay:
        Infinite-server station: no queueing, response = demand.
    """

    name: str
    demand_s: float
    servers: int = 1
    delay: bool = False

    def __post_init__(self) -> None:
        if self.demand_s < 0:
            raise WorkloadError(f"negative service demand at {self.name}")
        if self.servers < 1:
            raise WorkloadError(f"station {self.name} needs >= 1 server")

    @property
    def effective_demand_s(self) -> float:
        """Demand seen by the MVA recursion (scaled for multi-server)."""
        return self.demand_s / self.servers


@dataclass(frozen=True)
class MvaSolution:
    """Exact solution of a closed network at one population."""

    population: int
    throughput_per_s: float
    response_time_s: float  #: total response time excluding think time
    station_queues: tuple  #: mean queue length per station
    station_residence_s: tuple  #: mean residence time per station

    @property
    def bottleneck_index(self) -> int:
        return int(np.argmax(self.station_residence_s))


@dataclass(frozen=True)
class ClosedNetwork:
    """A closed queueing network: stations plus per-customer think time."""

    stations: tuple
    think_time_s: float

    def __post_init__(self) -> None:
        if not self.stations:
            raise WorkloadError("network needs at least one station")
        if self.think_time_s < 0:
            raise WorkloadError("think time must be >= 0")

    def bottleneck_demand_s(self) -> float:
        """Largest queueing-station demand (saturation throughput = 1/this)."""
        ds = [s.effective_demand_s for s in self.stations if not s.delay]
        return max(ds) if ds else 0.0

    def saturation_population(self) -> float:
        """N* beyond which throughput is bottleneck-limited."""
        d_max = self.bottleneck_demand_s()
        if d_max == 0:
            return float("inf")
        total = sum(s.effective_demand_s for s in self.stations) + self.think_time_s
        return total / d_max


def mva(network: ClosedNetwork, population: int) -> MvaSolution:
    """Exact MVA for ``population`` customers.

    Runs the full recursion from 1 to N; intermediate populations are
    discarded (use :func:`mva_sweep` to keep them all).
    """
    return mva_sweep(network, [population])[-1]


def mva_sweep(network: ClosedNetwork, populations: Sequence[int]) -> List[MvaSolution]:
    """Exact MVA at several populations in one recursion pass."""
    wanted = sorted(set(int(n) for n in populations))
    if not wanted or wanted[0] < 1:
        raise WorkloadError("populations must be positive integers")
    n_max = wanted[-1]
    stations = network.stations
    k = len(stations)
    demands = np.array([s.effective_demand_s for s in stations])
    is_delay = np.array([s.delay for s in stations])

    q = np.zeros(k)
    out: List[MvaSolution] = []
    want = set(wanted)
    for n in range(1, n_max + 1):
        resid = np.where(is_delay, demands, demands * (1.0 + q))
        cycle = network.think_time_s + resid.sum()
        x = n / cycle if cycle > 0 else 0.0
        q = x * resid
        if n in want:
            out.append(
                MvaSolution(
                    population=n,
                    throughput_per_s=float(x),
                    response_time_s=float(resid.sum()),
                    station_queues=tuple(float(v) for v in q),
                    station_residence_s=tuple(float(v) for v in resid),
                )
            )
    return out
