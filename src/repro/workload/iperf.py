"""iperf-style network throughput micro-benchmark simulator (Table 4).

The paper measures TCP throughput between a client and the server VM with
iperf, natively and inside the nested VM (NAT-ed through dom0). Measured
means: native 304/316 Mbit/s (TX/RX), nested 304/314 — i.e. nested
networking is indistinguishable from native because Xen-Blanket's I/O path
is efficient and the instance NIC cap, not the hypervisor, limits
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.vm.nested import NestedOverheadModel

__all__ = ["IperfResult", "IperfSimulator"]

#: Measured m3.medium NIC envelope (megabits/second).
NATIVE_TX_MBPS = 304.0
NATIVE_RX_MBPS = 316.0
#: Nested RX loses a hair to the extra NAT hop; TX is indistinguishable.
NESTED_RX_FACTOR = 0.994


@dataclass(frozen=True)
class IperfResult:
    """One iperf measurement (means over the run's reporting intervals)."""

    tx_mbps: float
    rx_mbps: float
    nested: bool
    duration_s: float


class IperfSimulator:
    """Samples iperf runs against the calibrated NIC envelope.

    Per-run variation models TCP ramp-up and neighbour noise; the paper's
    numbers are means over multiple runs.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        overheads: NestedOverheadModel | None = None,
        noise_cv: float = 0.01,
    ) -> None:
        if noise_cv < 0:
            raise WorkloadError("noise cv must be >= 0")
        self.rng = rng
        self.overheads = overheads or NestedOverheadModel()
        self.noise_cv = noise_cv

    def run(self, nested: bool, duration_s: float = 30.0) -> IperfResult:
        """One measurement run."""
        if duration_s <= 0:
            raise WorkloadError("duration must be positive")
        tx = NATIVE_TX_MBPS
        rx = NATIVE_RX_MBPS
        if nested:
            tx *= self.overheads.network_factor
            rx *= self.overheads.network_factor * NESTED_RX_FACTOR
        noise = self.rng.normal(1.0, self.noise_cv, size=2)
        return IperfResult(
            tx_mbps=float(tx * max(noise[0], 0.5)),
            rx_mbps=float(rx * max(noise[1], 0.5)),
            nested=nested,
            duration_s=duration_s,
        )

    def mean_of(self, nested: bool, runs: int = 10) -> IperfResult:
        """Mean over several runs (the Table 4 methodology)."""
        if runs < 1:
            raise WorkloadError("need at least one run")
        results = [self.run(nested) for _ in range(runs)]
        return IperfResult(
            tx_mbps=float(np.mean([r.tx_mbps for r in results])),
            rx_mbps=float(np.mean([r.rx_mbps for r in results])),
            nested=nested,
            duration_s=sum(r.duration_s for r in results),
        )
