"""dd-style disk throughput micro-benchmark simulator (Table 4).

The paper runs ``dd`` against the root EBS volume (caches flushed, 2 GB of
data) natively and inside the nested VM. Measured means: native
304.6 / 280.4 Mbit/s (read/write), nested 297.6 / 274.2 — about a 2 %
degradation from the extra block-layer hop through the nested hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.units import gib_to_megabits
from repro.vm.nested import NestedOverheadModel

__all__ = ["DiskBenchResult", "DiskBenchSimulator"]

#: Measured EBS envelope on m3.medium (megabits/second).
NATIVE_READ_MBPS = 304.6
NATIVE_WRITE_MBPS = 280.4


@dataclass(frozen=True)
class DiskBenchResult:
    """One dd measurement."""

    read_mbps: float
    write_mbps: float
    nested: bool
    data_gib: float

    @property
    def read_seconds(self) -> float:
        return gib_to_megabits(self.data_gib) / self.read_mbps

    @property
    def write_seconds(self) -> float:
        return gib_to_megabits(self.data_gib) / self.write_mbps


class DiskBenchSimulator:
    """Samples dd runs against the calibrated EBS envelope."""

    def __init__(
        self,
        rng: np.random.Generator,
        overheads: NestedOverheadModel | None = None,
        noise_cv: float = 0.015,
    ) -> None:
        if noise_cv < 0:
            raise WorkloadError("noise cv must be >= 0")
        self.rng = rng
        self.overheads = overheads or NestedOverheadModel()
        self.noise_cv = noise_cv

    def run(self, nested: bool, data_gib: float = 2.0) -> DiskBenchResult:
        """One run reading and writing ``data_gib`` with flushed caches."""
        if data_gib <= 0:
            raise WorkloadError("data size must be positive")
        rd = NATIVE_READ_MBPS
        wr = NATIVE_WRITE_MBPS
        if nested:
            rd *= self.overheads.disk_factor
            wr *= self.overheads.disk_factor
        noise = self.rng.normal(1.0, self.noise_cv, size=2)
        return DiskBenchResult(
            read_mbps=float(rd * max(noise[0], 0.5)),
            write_mbps=float(wr * max(noise[1], 0.5)),
            nested=nested,
            data_gib=data_gib,
        )

    def mean_of(self, nested: bool, runs: int = 10, data_gib: float = 2.0) -> DiskBenchResult:
        """Mean over several runs (the Table 4 methodology)."""
        if runs < 1:
            raise WorkloadError("need at least one run")
        results = [self.run(nested, data_gib) for _ in range(runs)]
        return DiskBenchResult(
            read_mbps=float(np.mean([r.read_mbps for r in results])),
            write_mbps=float(np.mean([r.write_mbps for r in results])),
            nested=nested,
            data_gib=data_gib,
        )
