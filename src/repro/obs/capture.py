"""Observation scopes: collect traces and metrics across batch boundaries.

The experiment drivers never see sinks — they submit
:class:`~repro.runtime.spec.RunSpec` batches. An :func:`observe` scope
bridges the gap the same way :func:`repro.runtime.collect_telemetry` does:
while a scope with ``trace=True`` is active, :func:`repro.runtime.run_batch`
switches every spec to capture mode (workers record into a
:class:`~repro.obs.sinks.MemorySink` and ship the events back inside their
run telemetry), and reports each finished batch here **in submission
order** — which is what makes the JSONL stream byte-identical at any
``--jobs`` value.

A scope accumulates, per run: the label, the seed, the captured event
dicts, and the run's metrics snapshot; plus one merged
:class:`~repro.obs.metrics.MetricsRegistry` across all runs.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import write_jsonl_line

__all__ = [
    "RunObservation",
    "ObservationScope",
    "observe",
    "active_scopes",
    "trace_capture_active",
    "notify_run",
]


@dataclass(frozen=True)
class RunObservation:
    """What one executed run reported back."""

    label: str
    seed: int
    events: Tuple[Dict[str, Any], ...] = ()
    metrics: Optional[Dict[str, Any]] = None
    #: Which engine executed the run (``RunTelemetry.engine_kind``).
    engine: str = "event"
    #: The run executed inside a cross-run fusion group
    #: (``RunTelemetry.fused``).
    fused: bool = False
    #: The run was cloned from a dynamics-identical sibling
    #: (``RunTelemetry.deduped``).
    deduped: bool = False


class ObservationScope:
    """Accumulates run observations while active (see :func:`observe`)."""

    def __init__(self, trace: bool = False, metrics: bool = False) -> None:
        self.trace = trace
        self.metrics_enabled = metrics
        self.runs: List[RunObservation] = []
        self.metrics = MetricsRegistry()

    # -------------------------------------------------------------- ingestion
    def add_run(
        self,
        label: str,
        seed: int,
        events: Optional[Tuple[Dict[str, Any], ...]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        engine: str = "event",
        fused: bool = False,
        deduped: bool = False,
    ) -> None:
        """Record one finished run (called in submission order)."""
        self.runs.append(
            RunObservation(
                label=label, seed=seed, events=tuple(events or ()),
                metrics=metrics, engine=engine, fused=fused, deduped=deduped,
            )
        )
        if metrics:
            self.metrics.merge(MetricsRegistry.from_dict(metrics))

    # --------------------------------------------------------------- queries
    @property
    def event_count(self) -> int:
        return sum(len(r.events) for r in self.runs)

    def iter_event_records(
        self, extra_tags: Optional[Dict[str, Any]] = None
    ) -> Iterator[Dict[str, Any]]:
        """Per-event records tagged with their run's label and seed."""
        for run in self.runs:
            for event in run.events:
                record: Dict[str, Any] = dict(extra_tags or {})
                record["run"] = run.label
                record["seed"] = run.seed
                record["engine"] = run.engine
                # Presence-based tags: omitted when False so ordinary
                # trace lines don't grow for the common case.
                if run.fused:
                    record["fused"] = True
                if run.deduped:
                    record["deduped"] = True
                record.update(event)
                yield record

    # ----------------------------------------------------------------- output
    def write_jsonl(
        self,
        target: Union[str, IO[str]],
        extra_tags: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write every captured event as JSONL; returns the line count."""
        n = 0
        if hasattr(target, "write"):
            for record in self.iter_event_records(extra_tags):
                write_jsonl_line(target, record)  # type: ignore[arg-type]
                n += 1
            return n
        with open(target, "w", encoding="utf-8") as fp:
            for record in self.iter_event_records(extra_tags):
                write_jsonl_line(fp, record)
                n += 1
        return n

    def metrics_summary(self) -> str:
        return self.metrics.summary()


_ACTIVE: contextvars.ContextVar[Tuple[ObservationScope, ...]] = contextvars.ContextVar(
    "repro_obs_scopes", default=()
)


@contextlib.contextmanager
def observe(trace: bool = False, metrics: bool = False) -> Iterator[ObservationScope]:
    """Activate an :class:`ObservationScope` for the duration of the block.

    Every :func:`repro.runtime.run_batch` executed inside reports its runs
    here; ``trace=True`` additionally switches those runs to event capture.
    """
    scope = ObservationScope(trace=trace, metrics=metrics)
    token = _ACTIVE.set(_ACTIVE.get() + (scope,))
    try:
        yield scope
    finally:
        _ACTIVE.reset(token)


def active_scopes() -> Tuple[ObservationScope, ...]:
    """The currently active scopes, innermost last."""
    return _ACTIVE.get()


def trace_capture_active() -> bool:
    """Should runs capture trace events right now?"""
    return any(scope.trace for scope in _ACTIVE.get())


def notify_run(
    label: str,
    seed: int,
    events: Optional[Tuple[Dict[str, Any], ...]],
    metrics: Optional[Dict[str, Any]],
    engine: str = "event",
    fused: bool = False,
    deduped: bool = False,
) -> None:
    """Report one finished run to every active scope (executor hook)."""
    for scope in _ACTIVE.get():
        scope.add_run(
            label, seed, events=events, metrics=metrics, engine=engine,
            fused=fused, deduped=deduped,
        )
