"""The typed trace-event model: every decision the scheduler can make.

Each event is a frozen dataclass with a stable wire name (``etype``) and
JSON-safe fields, so a stream of events serialises losslessly to JSONL and
back. The events mirror the paper's decision vocabulary (Section 3.1):
bids placed, leases acquired and terminated, the price crossing the bid or
the on-demand price, voluntary (planned/reverse/switch) migrations, forced
migrations inside the revocation grace window, checkpoint writes/restores,
service blackouts, and the billing-boundary evaluations that drive it all.

Emission sites: :class:`~repro.core.scheduler.CloudScheduler` (decisions,
migrations, checkpoints, blackouts, billing ticks),
:class:`~repro.cloud.provider.CloudProvider` (lease lifecycle), and
:class:`~repro.simulator.engine.Engine` (run completion) — each behind a
:class:`~repro.obs.sinks.TraceSink` that defaults to the disabled null
sink, so with tracing off no event object is ever constructed.

``EVENT_TYPES`` maps wire names back to classes; :func:`event_from_dict`
inverts :meth:`TraceEvent.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Type

__all__ = [
    "TraceEvent",
    "BidPlaced",
    "LeaseAcquired",
    "LeaseTerminated",
    "PriceCrossing",
    "BillingTick",
    "RevocationWarning",
    "Revocation",
    "VoluntaryMigration",
    "ForcedMigration",
    "MigrationAborted",
    "CheckpointWrite",
    "CheckpointRestore",
    "ServiceBlackout",
    "EngineRunCompleted",
    "EVENT_TYPES",
    "event_from_dict",
]

#: Wire name -> event class, populated by :func:`_register`.
EVENT_TYPES: Dict[str, Type["TraceEvent"]] = {}


def _register(cls: Type["TraceEvent"]) -> Type["TraceEvent"]:
    if not cls.etype or cls.etype in EVENT_TYPES:
        raise ValueError(f"duplicate or empty event type {cls.etype!r}")
    EVENT_TYPES[cls.etype] = cls
    return cls


@dataclass(frozen=True)
class TraceEvent:
    """Base event: a simulation instant plus typed payload fields.

    ``t`` is the simulation time (seconds) the event describes. Events are
    emitted in processing order, which is chronological except for the few
    that describe a just-detected past instant (a price crossing noticed at
    a billing boundary) or a committed future one (a migration's resume
    time recorded at suspension) — sort by ``t`` for a strict timeline.
    """

    etype: ClassVar[str] = ""

    t: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict with the wire ``type`` first, then the fields."""
        out: Dict[str, Any] = {"type": self.etype}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Rebuild an event from :meth:`TraceEvent.to_dict` output."""
    payload = dict(data)
    etype = payload.pop("type", None)
    cls = EVENT_TYPES.get(etype)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(f"unknown trace event type {etype!r}")
    return cls(**payload)


# ------------------------------------------------------------------ bidding
@_register
@dataclass(frozen=True)
class BidPlaced(TraceEvent):
    """A spot request was submitted at ``bid`` while the price was ``price``."""

    etype: ClassVar[str] = "bid-placed"

    market: str
    bid: float
    price: float
    policy: str
    n_servers: int = 1
    rationale: str = ""


# ------------------------------------------------------------------- leases
@_register
@dataclass(frozen=True)
class LeaseAcquired(TraceEvent):
    """The provider granted a lease; it becomes usable at ``ready_at``."""

    etype: ClassVar[str] = "lease-acquired"

    market: str
    kind: str  #: 'spot' | 'on_demand'
    lease_id: str
    ready_at: float
    bid: Optional[float] = None  #: spot only


@_register
@dataclass(frozen=True)
class LeaseTerminated(TraceEvent):
    """A lease ended; ``billed`` is its total materialised cost."""

    etype: ClassVar[str] = "lease-terminated"

    market: str
    kind: str
    lease_id: str
    reason: str
    revoked: bool
    billed: float


# ------------------------------------------------------------------- prices
@_register
@dataclass(frozen=True)
class PriceCrossing(TraceEvent):
    """The spot price crossed a decision threshold.

    ``direction`` is one of ``above-bid`` (revocation trigger),
    ``above-on-demand`` (planned-migration trigger) or
    ``below-on-demand`` (reverse-migration trigger); ``t`` is the crossing
    instant itself, which for boundary-evaluated triggers can precede the
    instant the scheduler acted on it.
    """

    etype: ClassVar[str] = "price-crossing"

    market: str
    price: float
    threshold: float
    direction: str


@_register
@dataclass(frozen=True)
class BillingTick(TraceEvent):
    """A billing-boundary evaluation: the scheduler weighed a move.

    ``t`` is a lead time ahead of the boundary at ``boundary``
    (lead-time rule, Section 3.1)."""

    etype: ClassVar[str] = "billing-tick"

    market: str
    price: float
    on_demand_price: float
    boundary: float


# -------------------------------------------------------------- revocations
@_register
@dataclass(frozen=True)
class RevocationWarning(TraceEvent):
    """The provider warned of revocation: the price exceeded the bid.

    Forcible termination follows ``grace_s`` seconds after ``t``."""

    etype: ClassVar[str] = "revocation-warning"

    market: str
    bid: float
    price: float
    grace_s: float


@_register
@dataclass(frozen=True)
class Revocation(TraceEvent):
    """The spot fleet was forcibly terminated (grace window expired)."""

    etype: ClassVar[str] = "revocation"

    market: str
    bid: float
    warned_at: float


# --------------------------------------------------------------- migrations
@_register
@dataclass(frozen=True)
class VoluntaryMigration(TraceEvent):
    """A scheduler-initiated move completed; ``t`` is the resume instant.

    ``next_bid_crossing`` is the instant (known to the simulator, not the
    scheduler) at which the source market's price would next have crossed
    the bid — when it lands shortly after a planned move, the move
    pre-empted a revocation, which is the paper's Fig-6 narrative.
    """

    etype: ClassVar[str] = "voluntary-migration"

    kind: str  #: 'planned' | 'reverse' | 'spot-switch'
    source: str
    target: str
    started_at: float
    downtime_s: float
    next_bid_crossing: Optional[float] = None


@_register
@dataclass(frozen=True)
class ForcedMigration(TraceEvent):
    """A revocation-driven move completed; ``t`` is the resume instant."""

    etype: ClassVar[str] = "forced-migration"

    source: str
    target: str
    started_at: float  #: the warning instant
    downtime_s: float


@_register
@dataclass(frozen=True)
class MigrationAborted(TraceEvent):
    """A voluntary move was cancelled before the blackout started."""

    etype: ClassVar[str] = "migration-aborted"

    kind: str
    source: str
    target: str
    reason: str  #: 'target-revoked' | 'horizon'


# -------------------------------------------------------------- checkpoints
@_register
@dataclass(frozen=True)
class CheckpointWrite(TraceEvent):
    """The final checkpoint increment was written to the service volume."""

    etype: ClassVar[str] = "checkpoint-write"

    market: str
    size_gib: float


@_register
@dataclass(frozen=True)
class CheckpointRestore(TraceEvent):
    """The service resumed from its checkpoint on the target fleet."""

    etype: ClassVar[str] = "checkpoint-restore"

    market: str
    downtime_s: float


# ------------------------------------------------------------- availability
@_register
@dataclass(frozen=True)
class ServiceBlackout(TraceEvent):
    """One contiguous unavailability window of the hosted service.

    Spans ``[start, end)`` plus any lazy-restore degradation tail of
    ``degraded_s`` seconds."""

    etype: ClassVar[str] = "service-blackout"

    cause: str
    start: float
    end: float
    degraded_s: float


# ------------------------------------------------------------------- engine
@_register
@dataclass(frozen=True)
class EngineRunCompleted(TraceEvent):
    """The discrete-event engine finished a ``run()`` call."""

    etype: ClassVar[str] = "engine-run-completed"

    fired_events: int
