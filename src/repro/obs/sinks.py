"""Trace sinks: where emitted events go.

The :class:`TraceSink` protocol is deliberately tiny — an ``enabled`` flag
plus ``emit`` — so instrumented hot paths can guard event *construction*
behind ``if sink.enabled:`` and pay nothing when tracing is off. The
default everywhere is the shared :data:`NULL_SINK`.

Provided sinks:

* :class:`NullSink` — disabled, drops everything (the default);
* :class:`MemorySink` — append to an in-process list (tests, capture
  across the process-pool boundary);
* :class:`RingBufferSink` — keep only the last ``capacity`` events
  (flight-recorder debugging of long runs);
* :class:`JsonlSink` — stream events as JSON lines to a file
  (``repro-simulate --trace``; read back with
  :func:`repro.obs.read_jsonl`).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Protocol, Union, runtime_checkable

from repro.obs.events import TraceEvent

__all__ = [
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "RingBufferSink",
    "JsonlSink",
    "read_jsonl",
    "write_jsonl_line",
]


@runtime_checkable
class TraceSink(Protocol):
    """What instrumented code needs from a sink."""

    #: Emission sites check this before constructing an event object, so a
    #: disabled sink costs one attribute read and a branch per site.
    enabled: bool

    def emit(self, event: TraceEvent) -> None:
        """Record one event (called only when :attr:`enabled` is true)."""
        ...


class NullSink:
    """The zero-overhead default: disabled, drops anything emitted anyway."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never called
        pass


#: Shared default sink — instrumented constructors default to this.
NULL_SINK = NullSink()


class MemorySink:
    """Collect every event in an in-process list."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class RingBufferSink:
    """Keep only the most recent ``capacity`` events (a flight recorder)."""

    enabled = True

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


def write_jsonl_line(fp: IO[str], record: Dict[str, Any]) -> None:
    """Write one event record as a compact JSON line."""
    fp.write(json.dumps(record, separators=(",", ":")))
    fp.write("\n")


class JsonlSink:
    """Stream events to a JSONL file, one compact JSON object per line.

    Usable as a context manager; ``tags`` (e.g. run label and seed) are
    merged into every line so streams from several runs can share a file.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path, IO[str]],
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        if hasattr(path, "write"):
            self._fp: IO[str] = path  # type: ignore[assignment]
            self._owns = False
        else:
            self._fp = open(path, "w", encoding="utf-8")
            self._owns = True
        self.tags = dict(tags or {})
        self.lines_written = 0

    def emit(self, event: TraceEvent) -> None:
        record = dict(self.tags)
        record.update(event.to_dict())
        write_jsonl_line(self._fp, record)
        self.lines_written += 1

    def close(self) -> None:
        if self._owns:
            self._fp.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield the event records of a JSONL trace file (blank lines skipped)."""
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                yield json.loads(line)
