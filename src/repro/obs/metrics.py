"""A lightweight metrics registry: counters, gauges, histograms.

The scheduler records *why*-shaped aggregates here as it runs — migrations
by cause, downtime per blackout, spend per market, bid-to-revocation lead
times — cheap enough to stay always-on (a handful of increments per
simulated hour). A registry serialises to a plain dict
(:meth:`MetricsRegistry.to_dict`) so it can ride a
:class:`~repro.runtime.telemetry.RunTelemetry` across the process-pool
boundary, and registries :meth:`~MetricsRegistry.merge` so batches and
experiments can aggregate per-run metrics deterministically (merge order =
submission order).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Observed samples with count/sum/min/max and quantile queries.

    Samples are kept (runs observe tens of values, not millions) so merged
    histograms answer exact quantiles; merging concatenates in call order,
    which the batch layer keeps deterministic.
    """

    __slots__ = ("samples",)

    def __init__(self, samples: Optional[List[float]] = None) -> None:
        self.samples: List[float] = list(samples or [])

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Exact sample quantile (nearest-rank), 0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]


class MetricsRegistry:
    """Named counters, gauges and histograms, created on first touch."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ---------------------------------------------------------------- access
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # ------------------------------------------------------------- transport
    def to_dict(self) -> Dict[str, Any]:
        """A picklable/JSON-safe snapshot (inverse of :meth:`from_dict`)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: list(h.samples) for k, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        reg = cls()
        for k, v in data.get("counters", {}).items():
            reg.counters[k] = Counter(v)
        for k, v in data.get("gauges", {}).items():
            reg.gauges[k] = Gauge(v)
        for k, v in data.get("histograms", {}).items():
            reg.histograms[k] = Histogram(v)
        return reg

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (counters add, gauges take the
        latest write, histograms concatenate). Returns ``self``."""
        for k, c in other.counters.items():
            self.counter(k).inc(c.value)
        for k, g in other.gauges.items():
            self.gauge(k).set(g.value)
        for k, h in other.histograms.items():
            self.histogram(k).samples.extend(h.samples)
        return self

    # ------------------------------------------------------------- rendering
    def summary(self) -> str:
        """Sorted multi-line rendering (the ``--metrics`` footer)."""
        lines: List[str] = []
        for name, c in sorted(self.counters.items()):
            value = c.value
            lines.append(
                f"  {name} = {int(value)}" if value == int(value) else f"  {name} = {value:.4f}"
            )
        for name, g in sorted(self.gauges.items()):
            lines.append(f"  {name} = {g.value:.4f}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"  {name}: n={h.count} mean={h.mean:.2f} min={h.min:.2f} "
                f"p95={h.quantile(0.95):.2f} max={h.max:.2f}"
            )
        return "\n".join(lines) if lines else "  (no metrics recorded)"
