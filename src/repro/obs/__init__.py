"""Structured observability: decision traces + run metrics (``repro.obs``).

The paper's whole argument rests on *why* the scheduler moves — proactive
migrations ahead of revocations, bounded checkpoint downtime, bid
crossings. This package makes those decisions observable without touching
the results they produce:

* :mod:`repro.obs.events` — the typed trace-event model (``BidPlaced``,
  ``PriceCrossing``, ``VoluntaryMigration``, ``Revocation``,
  ``BillingTick``, …), emitted from the scheduler, provider and engine;
* :mod:`repro.obs.sinks` — the :class:`TraceSink` protocol and the
  null / memory / ring-buffer / JSONL sinks. The null sink is the default
  everywhere and costs one branch per emission site — with tracing off,
  runs are byte-identical to an uninstrumented build;
* :mod:`repro.obs.metrics` — counters/gauges/histograms aggregated per
  run and merged per batch through the runtime telemetry plumbing;
* :mod:`repro.obs.capture` — :func:`observe` scopes that collect events
  and metrics across ``run_batch`` calls (including from pool workers) in
  deterministic submission order;
* :mod:`repro.obs.cli` — the ``repro-trace`` command
  (``repro-trace summarize trace.jsonl``).

Surfacing: ``repro-simulate --trace PATH --metrics`` and
``repro-experiments --trace PATH --metrics``; analysis helpers that turn a
trace into the paper's narrative live in :mod:`repro.analysis.decisions`.
See ``docs/TRACING.md`` for the full event reference.
"""

from repro.obs.capture import (
    ObservationScope,
    RunObservation,
    active_scopes,
    notify_run,
    observe,
    trace_capture_active,
)
from repro.obs.events import (
    EVENT_TYPES,
    BidPlaced,
    BillingTick,
    CheckpointRestore,
    CheckpointWrite,
    EngineRunCompleted,
    ForcedMigration,
    LeaseAcquired,
    LeaseTerminated,
    MigrationAborted,
    PriceCrossing,
    Revocation,
    RevocationWarning,
    ServiceBlackout,
    TraceEvent,
    VoluntaryMigration,
    event_from_dict,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    RingBufferSink,
    TraceSink,
    read_jsonl,
)

__all__ = [
    # events
    "TraceEvent",
    "BidPlaced",
    "LeaseAcquired",
    "LeaseTerminated",
    "PriceCrossing",
    "BillingTick",
    "RevocationWarning",
    "Revocation",
    "VoluntaryMigration",
    "ForcedMigration",
    "MigrationAborted",
    "CheckpointWrite",
    "CheckpointRestore",
    "ServiceBlackout",
    "EngineRunCompleted",
    "EVENT_TYPES",
    "event_from_dict",
    # sinks
    "TraceSink",
    "NullSink",
    "NULL_SINK",
    "MemorySink",
    "RingBufferSink",
    "JsonlSink",
    "read_jsonl",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # capture
    "ObservationScope",
    "RunObservation",
    "observe",
    "active_scopes",
    "trace_capture_active",
    "notify_run",
]
