"""``python -m repro.obs`` — alias for the ``repro-trace`` command."""

import sys

from repro.obs.cli import main

sys.exit(main())
