"""The ``repro-trace`` command: inspect JSONL decision traces.

``repro-trace summarize trace.jsonl`` renders, per run found in the file,
the event-type tally, the migration narrative ("N voluntary migrations, M
ahead of a bid crossing, K forced"), and optionally a chronological
decision timeline (``--timeline``, trimmed with ``--limit`` and filtered
with ``--types``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.decisions import (
    decision_timeline,
    event_counts,
    group_runs,
    migration_narrative,
)
from repro.obs.sinks import read_jsonl

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect JSONL decision traces written by --trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="per-run event tallies, migration narrative, timeline"
    )
    summarize.add_argument("path", help="JSONL trace file")
    summarize.add_argument(
        "--timeline",
        action="store_true",
        help="also print the chronological decision timeline per run",
    )
    summarize.add_argument(
        "--limit",
        type=int,
        default=40,
        metavar="N",
        help="max timeline lines per run (default 40; 0 = unlimited)",
    )
    summarize.add_argument(
        "--types",
        metavar="T1,T2",
        default=None,
        help="comma-separated event types to keep in the timeline",
    )
    return parser


def _summarize(args: argparse.Namespace) -> int:
    try:
        records = list(read_jsonl(args.path))
    except OSError as exc:
        print(f"repro-trace: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"{args.path}: empty trace")
        return 0

    types = [t.strip() for t in args.types.split(",") if t.strip()] if args.types else None
    limit = None if args.limit == 0 else args.limit

    groups = group_runs(records)
    print(f"{args.path}: {len(records)} event(s) across {len(groups)} run(s)")
    for (experiment, run, seed), events in groups:
        heading = " / ".join(p for p in (experiment, run) if p) or "(untagged)"
        engine = str(events[0].get("engine", "")) if events else ""
        tag = f", {engine} engine" if engine else ""
        if events and events[0].get("fused"):
            tag += ", fused"
        if events and events[0].get("deduped"):
            tag += ", deduped clone"
        print(f"\n== {heading} (seed {seed}{tag}) — {len(events)} event(s)")
        for etype, n in event_counts(events).items():
            print(f"  {etype:22s} {n}")
        print(f"  {migration_narrative(events)}")
        if args.timeline:
            print()
            print(decision_timeline(events, limit=limit, types=types))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _summarize(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-output: exit quietly,
        # pointing stdout at devnull so interpreter shutdown doesn't warn.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
