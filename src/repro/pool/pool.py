"""The spot pool: many tenant services on one simulated cloud.

All tenants share one :class:`~repro.simulator.engine.Engine` and one
:class:`~repro.cloud.provider.CloudProvider`, so every tenant sees the
*same* price sample — a spike in a market revokes every tenant placed
there simultaneously, which is exactly the co-revocation risk the
placement policy manages:

* ``diverse`` — tenants are spread round-robin across the catalog's spot
  markets, so one market's spike forces only its own tenants;
* ``concentrated`` — every tenant sits in the single cheapest market,
  minimizing cost variance but coupling all failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence

import numpy as np

from repro.cloud.provider import CloudProvider
from repro.core.bidding import BiddingPolicy, ProactiveBidding
from repro.core.scheduler import CloudScheduler
from repro.core.strategies import SingleMarketStrategy
from repro.errors import ConfigurationError
from repro.pool.spares import DEFAULT_HANDOVER_WINDOW_S, spare_requirement
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import MarketKey, TraceCatalog, build_catalog
from repro.units import SECONDS_PER_HOUR, days
from repro.vm.mechanisms import Mechanism, MechanismParams, MigrationModel, TYPICAL_PARAMS

__all__ = ["PoolConfig", "ServiceOutcome", "PoolResult", "SpotPool"]


@dataclass(frozen=True)
class PoolConfig:
    """Configuration of one pool run."""

    n_services: int = 12
    placement: Literal["diverse", "concentrated"] = "diverse"
    size: str = "small"
    regions: Sequence[str] = ("us-east-1a", "us-east-1b")
    bidding: BiddingPolicy = field(default_factory=ProactiveBidding)
    mechanism: Mechanism = Mechanism.CKPT_LR_LIVE
    params: MechanismParams = TYPICAL_PARAMS
    seed: int = 0
    horizon_s: float = days(30)
    catalog: Optional[TraceCatalog] = None

    def __post_init__(self) -> None:
        if self.n_services <= 0:
            raise ConfigurationError("pool needs at least one service")
        if self.placement not in ("diverse", "concentrated"):
            raise ConfigurationError(f"unknown placement {self.placement!r}")


@dataclass(frozen=True)
class ServiceOutcome:
    """Per-tenant results."""

    service_id: int
    market: MarketKey
    total_cost: float
    unavailability_percent: float
    forced_migrations: int
    forced_times: tuple
    downtime_s: float


@dataclass(frozen=True)
class PoolResult:
    """Pool-level aggregation."""

    services: tuple
    duration_hours: float
    baseline_rate_per_service: float
    spare_servers_needed: int
    handover_window_s: float

    @property
    def n_services(self) -> int:
        return len(self.services)

    @property
    def total_cost(self) -> float:
        return sum(s.total_cost for s in self.services)

    @property
    def normalized_cost_percent(self) -> float:
        baseline = self.baseline_rate_per_service * self.duration_hours * self.n_services
        return 100.0 * self.total_cost / baseline

    @property
    def mean_unavailability_percent(self) -> float:
        return float(np.mean([s.unavailability_percent for s in self.services]))

    @property
    def worst_unavailability_percent(self) -> float:
        return float(max(s.unavailability_percent for s in self.services))

    @property
    def total_forced(self) -> int:
        return sum(s.forced_migrations for s in self.services)

    @property
    def spare_fraction(self) -> float:
        """Spare servers as a fraction of the tenant fleet."""
        return self.spare_servers_needed / self.n_services


class SpotPool:
    """Runs ``n_services`` independent schedulers on one shared world."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.catalog = config.catalog or build_catalog(
            seed=config.seed,
            horizon=config.horizon_s,
            regions=tuple(config.regions),
        )
        spot_markets = [
            k for k in self.catalog.markets() if k.size == config.size
        ]
        if not spot_markets:
            raise ConfigurationError(
                f"catalog has no markets of size {config.size!r}"
            )
        self.markets = spot_markets

    def _market_for(self, service_id: int, t0: float) -> MarketKey:
        if self.config.placement == "concentrated":
            return min(self.markets, key=lambda k: self.catalog.trace(k).price_at(t0))
        return self.markets[service_id % len(self.markets)]

    def run(self, handover_window_s: float = DEFAULT_HANDOVER_WINDOW_S) -> PoolResult:
        """Simulate the whole pool and aggregate."""
        cfg = self.config
        streams = RngStreams(cfg.seed)
        engine = Engine()
        provider = CloudProvider(self.catalog, rng=streams.get("pool/provider"))
        schedulers: Dict[int, CloudScheduler] = {}
        for i in range(cfg.n_services):
            key = self._market_for(i, 0.0)
            sch = CloudScheduler(
                engine=engine,
                provider=provider,
                bidding=cfg.bidding,
                strategy=SingleMarketStrategy(key),
                migration_model=MigrationModel(cfg.mechanism, cfg.params),
                rng=streams.get(f"pool/service{i}"),
                horizon=cfg.horizon_s,
            )
            sch.start()
            schedulers[i] = sch
        engine.run(until=cfg.horizon_s + 1.0)

        outcomes: List[ServiceOutcome] = []
        for i, sch in schedulers.items():
            forced = tuple(
                m.started_at for m in sch.migrations if m.kind == "forced"
            )
            outcomes.append(
                ServiceOutcome(
                    service_id=i,
                    market=self._market_for(i, 0.0),
                    total_cost=sch.ledger.total,
                    unavailability_percent=sch.availability.unavailability_percent(),
                    forced_migrations=len(forced),
                    forced_times=forced,
                    downtime_s=sch.availability.total_downtime(),
                )
            )
        duration_h = cfg.horizon_s / SECONDS_PER_HOUR
        baseline = min(
            self.catalog.on_demand_price(k) for k in self.markets
        )
        spares = spare_requirement(
            [o.forced_times for o in outcomes], handover_window_s
        )
        return PoolResult(
            services=tuple(outcomes),
            duration_hours=duration_h,
            baseline_rate_per_service=baseline,
            spare_servers_needed=spares,
            handover_window_s=handover_window_s,
        )
