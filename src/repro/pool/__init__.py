"""Multi-tenant server pools over spot markets (SpotCheck-style).

The paper's scheduler hosts one service. Its companion system SpotCheck
(ref [16]) derives a *reliable cloud* from spot servers by hosting many
tenant VMs over pools of spot capacity, with shared on-demand spares
absorbing revocations. This package layers that on the reproduction:

* :class:`~repro.pool.pool.SpotPool` runs many independent scheduler
  instances over one shared engine/provider, so co-revocations (all
  tenants in a market are revoked by the same price spike) emerge from
  the shared traces;
* :mod:`repro.pool.spares` sizes the shared on-demand spare pool from the
  observed concurrency of forced migrations — the statistical-multiplexing
  argument for why a derivative cloud's overhead capacity can be a small
  fraction of its fleet *if* placements are diversified across markets.
"""

from repro.pool.pool import PoolConfig, PoolResult, ServiceOutcome, SpotPool
from repro.pool.spares import (
    concurrent_events,
    service_demand_profile,
    spare_requirement,
)

__all__ = [
    "PoolConfig",
    "PoolResult",
    "ServiceOutcome",
    "SpotPool",
    "concurrent_events",
    "service_demand_profile",
    "spare_requirement",
]
