"""Spare-pool sizing from forced-migration concurrency.

During a forced migration a tenant briefly needs an on-demand server. A
derivative-cloud operator keeps a pool of warm spares; its required size is
the maximum number of *concurrent* forced migrations, where two migrations
overlap if they start within each other's handover window (grace +
startup + restore, a few minutes). Diversified placements make
co-revocations rare, so the spare pool can be far smaller than the fleet —
concentrated placements need spares for everyone at once.

Multi-consumer semantics
------------------------
:func:`spare_requirement` originally assumed one homogeneous consumer: a
single handover window shared by every tenant, and no bound on how many
spares one tenant could hold at once. Neither survives a real fleet
(:mod:`repro.fleet`):

* tenants using different migration mechanisms occupy a spare for
  *different* lengths of time — ``window_s`` therefore accepts one window
  per service;
* a tenant fails over as a unit: even if three of its servers are revoked
  in the same storm it claims at most its quota of spares —
  ``per_service_cap`` clamps each service's own concurrent demand before
  demands are summed across services.

Both parameters default to the legacy behaviour (one global window, no
cap), so single-consumer callers are unchanged. The sweep is half-open:
a spare returned at instant *t* is available to a claim arriving at *t*.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SchedulingError

__all__ = [
    "concurrent_events",
    "service_demand_profile",
    "spare_requirement",
    "DEFAULT_HANDOVER_WINDOW_S",
]

#: Grace window + on-demand startup + restore, rounded up.
DEFAULT_HANDOVER_WINDOW_S = 360.0


def concurrent_events(times: Sequence[float], window_s: float) -> int:
    """Maximum number of events active at once, each lasting ``window_s``.

    Classic sweep: +1 at each start, -1 at start+window, take the running
    maximum.
    """
    if window_s <= 0:
        raise SchedulingError("window must be positive")
    ts = np.asarray(sorted(times), dtype=float)
    if ts.size == 0:
        return 0
    starts = ts
    ends = ts + window_s
    points = np.concatenate([
        np.stack([starts, np.ones_like(starts)], axis=1),
        np.stack([ends, -np.ones_like(ends)], axis=1),
    ])
    # sort by time; ends before starts at the same instant (half-open)
    order = np.lexsort((points[:, 1], points[:, 0]))
    running = np.cumsum(points[order, 1])
    return int(running.max())


def service_demand_profile(
    times: Sequence[float],
    window_s: float,
    cap: Optional[int] = None,
) -> List[Tuple[float, int]]:
    """One service's spare demand as ``(instant, delta)`` step changes.

    Each forced migration occupies a spare for ``window_s`` seconds; the
    service's concurrent demand is clamped to ``cap`` when given (a tenant
    never holds more spares than its quota, however many of its servers
    are revoked at once). Deltas at equal instants are merged, releases
    processed before claims (half-open windows).
    """
    if window_s <= 0:
        raise SchedulingError("window must be positive")
    if cap is not None and cap < 0:
        raise SchedulingError("per-service cap must be >= 0")
    events: List[Tuple[float, int]] = []
    for t in times:
        t = float(t)
        events.append((t, 1))
        events.append((t + window_s, -1))
    # releases (-1) before claims (+1) at the same instant
    events.sort(key=lambda e: (e[0], e[1]))
    profile: List[Tuple[float, int]] = []
    active = 0
    held = 0
    for t, delta in events:
        active += delta
        want = active if cap is None else min(active, cap)
        if want != held:
            if profile and profile[-1][0] == t:
                merged = profile[-1][1] + (want - held)
                profile[-1] = (t, merged)
                if merged == 0:
                    profile.pop()
            else:
                profile.append((t, want - held))
            held = want
    return profile


def spare_requirement(
    forced_times_per_service: Iterable[Sequence[float]],
    window_s: Union[float, Sequence[float]] = DEFAULT_HANDOVER_WINDOW_S,
    *,
    per_service_cap: Union[None, int, Sequence[Optional[int]]] = None,
) -> int:
    """Warm on-demand spares needed for a set of tenants' forced migrations.

    ``window_s`` is either one handover window shared by all services or a
    sequence with one window per service (heterogeneous mechanisms hold a
    spare for different lengths of time). ``per_service_cap`` likewise
    accepts a single cap or one per service; each service's concurrent
    demand is clamped to its cap *before* demands are summed, so one
    tenant's storm cannot claim the whole pool on its own.
    """
    services = [list(map(float, times)) for times in forced_times_per_service]
    n = len(services)
    if isinstance(window_s, (int, float)):
        windows = [float(window_s)] * n
    else:
        windows = [float(w) for w in window_s]
        if len(windows) != n:
            raise SchedulingError(
                f"got {len(windows)} windows for {n} services"
            )
    if per_service_cap is None or isinstance(per_service_cap, int):
        caps: List[Optional[int]] = [per_service_cap] * n
    else:
        caps = list(per_service_cap)
        if len(caps) != n:
            raise SchedulingError(f"got {len(caps)} caps for {n} services")
    merged: List[Tuple[float, int]] = []
    for times, window, cap in zip(services, windows, caps):
        merged.extend(service_demand_profile(times, window, cap))
    if not merged:
        return 0
    # negative deltas (releases) before positive ones at equal instants
    merged.sort(key=lambda e: (e[0], e[1]))
    peak = 0
    level = 0
    for _, delta in merged:
        level += delta
        if level > peak:
            peak = level
    return peak
