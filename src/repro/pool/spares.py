"""Spare-pool sizing from forced-migration concurrency.

During a forced migration a tenant briefly needs an on-demand server. A
derivative-cloud operator keeps a pool of warm spares; its required size is
the maximum number of *concurrent* forced migrations, where two migrations
overlap if they start within each other's handover window (grace +
startup + restore, a few minutes). Diversified placements make
co-revocations rare, so the spare pool can be far smaller than the fleet —
concentrated placements need spares for everyone at once.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import SchedulingError

__all__ = ["concurrent_events", "spare_requirement", "DEFAULT_HANDOVER_WINDOW_S"]

#: Grace window + on-demand startup + restore, rounded up.
DEFAULT_HANDOVER_WINDOW_S = 360.0


def concurrent_events(times: Sequence[float], window_s: float) -> int:
    """Maximum number of events active at once, each lasting ``window_s``.

    Classic sweep: +1 at each start, -1 at start+window, take the running
    maximum.
    """
    if window_s <= 0:
        raise SchedulingError("window must be positive")
    ts = np.asarray(sorted(times), dtype=float)
    if ts.size == 0:
        return 0
    starts = ts
    ends = ts + window_s
    points = np.concatenate([
        np.stack([starts, np.ones_like(starts)], axis=1),
        np.stack([ends, -np.ones_like(ends)], axis=1),
    ])
    # sort by time; ends before starts at the same instant (half-open)
    order = np.lexsort((points[:, 1], points[:, 0]))
    running = np.cumsum(points[order, 1])
    return int(running.max())


def spare_requirement(
    forced_times_per_service: Iterable[Sequence[float]],
    window_s: float = DEFAULT_HANDOVER_WINDOW_S,
) -> int:
    """Warm on-demand spares needed for a set of tenants' forced migrations."""
    merged: List[float] = []
    for times in forced_times_per_service:
        merged.extend(float(t) for t in times)
    return concurrent_events(merged, window_s)
