"""repro — reproduction of "Cutting the Cost of Hosting Online Services
Using Cloud Spot Markets" (He, Shenoy, Sitaraman, Irwin — HPDC 2015).

The library hosts an *always-on* Internet service on a simulated cloud
combining cheap revocable spot servers with non-revocable on-demand
servers. The headline result: a proactive bidding policy plus fast VM
migration mechanisms (nested virtualization, live migration, bounded
checkpointing, lazy restore) cuts hosting cost to one-third to one-fifth
of an all-on-demand deployment while keeping unavailability near the
four-nines target.

Quick start::

    from repro import (
        SimulationConfig, run_simulation, SingleMarketStrategy,
        ProactiveBidding, MarketKey,
    )

    key = MarketKey("us-east-1a", "small")
    result = run_simulation(SimulationConfig(
        strategy=lambda: SingleMarketStrategy(key),
        bidding=ProactiveBidding(),
        regions=("us-east-1a",), sizes=("small",),
        seed=42,
    ))
    print(result.normalized_cost_percent, result.unavailability_percent)

Package map:

* :mod:`repro.core` — the cloud scheduler (bidding, strategies, accounting);
* :mod:`repro.cloud` — provider substrate (markets, billing, leases, EBS, VPC);
* :mod:`repro.traces` — spot-price traces (generation, IO, statistics);
* :mod:`repro.vm` — migration mechanism models;
* :mod:`repro.workload` — TPC-W queueing model and I/O micro-benchmarks;
* :mod:`repro.simulator` — the discrete-event kernel;
* :mod:`repro.runtime` — declarative batch execution (specs, catalog
  cache, parallel seed×variant fan-out, run telemetry);
* :mod:`repro.obs` — structured decision tracing and run metrics
  (typed trace events, sinks, ``observe`` scopes, ``repro-trace`` CLI);
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro._version import __version__
from repro.core import (
    AdaptiveBidding,
    AggregateResult,
    AvailabilityTracker,
    BiddingPolicy,
    CloudScheduler,
    CostLedger,
    HostingStrategy,
    MultiMarketStrategy,
    MultiRegionStrategy,
    OnDemandOnlyStrategy,
    ProactiveBidding,
    PureSpotStrategy,
    ReactiveBidding,
    SimulationConfig,
    SimulationResult,
    SingleMarketStrategy,
    StabilityAwareStrategy,
    aggregate,
    run_many,
    run_simulation,
)
from repro.cloud import CloudProvider, Lease, LeaseKind, SpotMarket
from repro.errors import ReproError
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    TraceEvent,
    TraceSink,
    observe,
    read_jsonl,
)
from repro.runtime import (
    BatchResult,
    BatchSpec,
    BatchTelemetry,
    RunSpec,
    RunTelemetry,
    StrategySpec,
    TraceCatalogCache,
    collect_telemetry,
    run_batch,
)
from repro.traces import (
    MarketKey,
    PriceTrace,
    TraceCatalog,
    build_catalog,
    calibration_for,
    generate_trace,
    load_aws_csv,
    save_aws_csv,
)
from repro.vm import (
    Mechanism,
    MechanismParams,
    MigrationModel,
    PESSIMISTIC_PARAMS,
    TYPICAL_PARAMS,
)
from repro.workload import TpcwConfig, TpcwModel

__all__ = [
    "__version__",
    "AdaptiveBidding",
    "AggregateResult",
    "AvailabilityTracker",
    "BiddingPolicy",
    "CloudScheduler",
    "CostLedger",
    "HostingStrategy",
    "MultiMarketStrategy",
    "MultiRegionStrategy",
    "OnDemandOnlyStrategy",
    "ProactiveBidding",
    "PureSpotStrategy",
    "ReactiveBidding",
    "SimulationConfig",
    "SimulationResult",
    "SingleMarketStrategy",
    "StabilityAwareStrategy",
    "aggregate",
    "run_many",
    "run_simulation",
    "BatchResult",
    "BatchSpec",
    "BatchTelemetry",
    "RunSpec",
    "RunTelemetry",
    "StrategySpec",
    "TraceCatalogCache",
    "collect_telemetry",
    "run_batch",
    "CloudProvider",
    "Lease",
    "LeaseKind",
    "SpotMarket",
    "MarketKey",
    "PriceTrace",
    "TraceCatalog",
    "build_catalog",
    "calibration_for",
    "generate_trace",
    "load_aws_csv",
    "save_aws_csv",
    "Mechanism",
    "MechanismParams",
    "MigrationModel",
    "TYPICAL_PARAMS",
    "PESSIMISTIC_PARAMS",
    "TpcwConfig",
    "TpcwModel",
    "ReproError",
    "TraceEvent",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "RingBufferSink",
    "JsonlSink",
    "MetricsRegistry",
    "observe",
    "read_jsonl",
]
