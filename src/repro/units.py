"""Unit helpers and conversions used throughout the library.

The simulation clock is in **seconds**; prices are **USD per hour**; memory
sizes are **GiB**; bandwidths are **megabits per second** unless a function
name says otherwise. These helpers keep the arithmetic readable and give the
tests a single place to check conversion constants.
"""

from __future__ import annotations

__all__ = [
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "HOURS_PER_DAY",
    "BITS_PER_BYTE",
    "MEGA",
    "GIBI",
    "minutes",
    "hours",
    "days",
    "to_hours",
    "to_days",
    "gib_to_megabits",
    "transfer_seconds",
    "percent",
    "basis_points",
    "fmt_duration",
    "fmt_usd",
]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
HOURS_PER_DAY = 24.0
BITS_PER_BYTE = 8
MEGA = 1_000_000
GIBI = 1024**3


def minutes(m: float) -> float:
    """Convert minutes to seconds."""
    return m * SECONDS_PER_MINUTE


def hours(h: float) -> float:
    """Convert hours to seconds."""
    return h * SECONDS_PER_HOUR


def days(d: float) -> float:
    """Convert days to seconds."""
    return d * SECONDS_PER_DAY


def to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def to_days(seconds: float) -> float:
    """Convert seconds to days."""
    return seconds / SECONDS_PER_DAY


def gib_to_megabits(gib: float) -> float:
    """Convert a size in GiB to megabits (for bandwidth arithmetic)."""
    return gib * GIBI * BITS_PER_BYTE / MEGA


def transfer_seconds(size_gib: float, bandwidth_mbps: float) -> float:
    """Time to move ``size_gib`` GiB over a ``bandwidth_mbps`` Mbit/s link."""
    if bandwidth_mbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
    if size_gib < 0:
        raise ValueError(f"size must be non-negative, got {size_gib}")
    return gib_to_megabits(size_gib) / bandwidth_mbps


def percent(fraction: float) -> float:
    """Express a fraction as a percentage."""
    return fraction * 100.0


def basis_points(fraction: float) -> float:
    """Express a fraction in basis points (1 bp = 0.01 %)."""
    return fraction * 10_000.0


def fmt_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < SECONDS_PER_MINUTE:
        return f"{seconds:.1f}s"
    if seconds < SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_MINUTE:.1f}m"
    if seconds < SECONDS_PER_DAY:
        return f"{seconds / SECONDS_PER_HOUR:.2f}h"
    return f"{seconds / SECONDS_PER_DAY:.2f}d"


def fmt_usd(amount: float) -> str:
    """Render a dollar amount with sensible precision."""
    if abs(amount) >= 100:
        return f"${amount:,.2f}"
    return f"${amount:.4f}"
