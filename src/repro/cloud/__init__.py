"""Cloud-provider simulator: instance types, regions, markets, billing.

This package reproduces the EC2 semantics the paper's scheduler relies on
(Section 2.1):

* on-demand servers: fixed hourly price, non-revocable, ~1.5 min startup;
* spot servers: variable price, granted only while price <= bid, revoked
  when price > bid with a two-minute grace warning, billed the start-of-hour
  spot price per hour with revoked partial hours free, bids capped at 4x the
  on-demand price, ~3.5-4.5 min startup;
* networked storage volumes (EBS) that survive server revocation;
* VPC-style IP reassignment so a migrated nested VM keeps its address.
"""

from repro.cloud.instance_types import InstanceType, INSTANCE_TYPES, instance_type
from repro.cloud.regions import Region, REGION_TABLE, region_of, link_between, RegionLink
from repro.cloud.startup import StartupModel, StartupSampler
from repro.cloud.billing import BillingRecord, bill_spot_lease, bill_on_demand_lease
from repro.cloud.spot_market import SpotMarket, BID_CAP_MULTIPLIER
from repro.cloud.ebs import Volume, VolumeStore
from repro.cloud.vpc import ElasticIp, VirtualPrivateCloud
from repro.cloud.provider import CloudProvider, Lease, LeaseKind

__all__ = [
    "InstanceType",
    "INSTANCE_TYPES",
    "instance_type",
    "Region",
    "REGION_TABLE",
    "region_of",
    "link_between",
    "RegionLink",
    "StartupModel",
    "StartupSampler",
    "BillingRecord",
    "bill_spot_lease",
    "bill_on_demand_lease",
    "SpotMarket",
    "BID_CAP_MULTIPLIER",
    "Volume",
    "VolumeStore",
    "ElasticIp",
    "VirtualPrivateCloud",
    "CloudProvider",
    "Lease",
    "LeaseKind",
]
