"""Regions, availability zones, and the WAN links between them.

The paper's Table 2 measures migration overheads *inside* a region (LAN,
networked storage shared, no disk copy) and *across* regions (WAN, disk
state must be copied). The :class:`RegionLink` table reproduces those
bandwidth asymmetries: US-East <-> US-West is faster than either coast to
EU-West.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError

__all__ = ["Region", "REGION_TABLE", "region_of", "RegionLink", "link_between", "GEO_REGIONS"]


@dataclass(frozen=True)
class Region:
    """An availability zone (the paper uses AZ-level markets).

    ``geo`` groups AZs into geographic regions: migrations between AZs of
    the same geo use the LAN path (shared networked storage), matching the
    paper's intra-region measurements.
    """

    name: str
    geo: str
    display: str


REGION_TABLE: dict[str, Region] = {
    "us-east-1a": Region("us-east-1a", "us-east", "US East 1a"),
    "us-east-1b": Region("us-east-1b", "us-east", "US East 1b"),
    "us-west-1a": Region("us-west-1a", "us-west", "US West 1a"),
    "us-west-1b": Region("us-west-1b", "us-west", "US West 1b"),
    "eu-west-1a": Region("eu-west-1a", "eu-west", "EU West 1a"),
}

#: Distinct geographic regions.
GEO_REGIONS = ("us-east", "us-west", "eu-west")


def region_of(name: str) -> Region:
    """Look up an availability zone record."""
    try:
        return REGION_TABLE[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown region {name!r}; known: {sorted(REGION_TABLE)}"
        ) from exc


@dataclass(frozen=True)
class RegionLink:
    """Connectivity between two locations for migration purposes.

    Attributes
    ----------
    intra:
        True when both endpoints share a geo (LAN path, shared EBS).
    memory_bandwidth_mbps:
        Effective bandwidth for memory-state transfer (live migration
        pre-copy or checkpoint shipping).
    disk_bandwidth_mbps:
        Effective bandwidth for bulk disk copies (WAN only; intra-region
        migrations re-attach the networked volume instead of copying).
    rtt_ms:
        Round-trip time, adds per-round latency to pre-copy.
    """

    intra: bool
    memory_bandwidth_mbps: float
    disk_bandwidth_mbps: float
    rtt_ms: float


#: Calibrated so the analytic models in :mod:`repro.vm` reproduce Table 2:
#: ~58 s to live migrate a 2 GB nested VM inside a region, 73-140 s across
#: regions, and 2-3 minutes per GB of disk cross-region.
_INTRA_LINK = RegionLink(intra=True, memory_bandwidth_mbps=300.0, disk_bandwidth_mbps=300.0, rtt_ms=0.5)

_WAN_LINKS: dict[frozenset[str], RegionLink] = {
    frozenset(("us-east", "us-west")): RegionLink(False, 245.0, 70.2, 70.0),
    frozenset(("us-east", "eu-west")): RegionLink(False, 242.0, 61.1, 85.0),
    frozenset(("us-west", "eu-west")): RegionLink(False, 127.0, 50.0, 140.0),
}


@lru_cache(maxsize=None)
def link_between(a: str, b: str) -> RegionLink:
    """The link used to migrate between two availability zones.

    Same geo (including the same AZ) -> LAN link; different geo -> the
    calibrated WAN link for that region pair. Links are a small fixed
    table over a small fixed zone set, so the lookup is memoized.
    """
    ra, rb = region_of(a), region_of(b)
    if ra.geo == rb.geo:
        return _INTRA_LINK
    key = frozenset((ra.geo, rb.geo))
    try:
        return _WAN_LINKS[key]
    except KeyError as exc:  # pragma: no cover - table is total over GEO_REGIONS
        raise ConfigurationError(f"no link between {ra.geo} and {rb.geo}") from exc
