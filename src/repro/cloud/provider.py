"""The cloud-provider facade: leases, markets, storage, addresses.

:class:`CloudProvider` ties the substrates together behind the small API
the scheduler consumes:

* ``request_spot`` / ``request_on_demand`` return a :class:`Lease` whose
  ``ready_at`` includes the sampled allocation latency (Table 1);
* ``terminate`` closes a lease and materialises its billing records
  (hourly spot billing with free revoked partial hours);
* ``volumes`` and ``vpc`` expose the persistence and addressing services.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.billing import (
    BillingRecord,
    LeaseBilling,
    on_demand_lease_billing,
    spot_lease_billing,
)
from repro.cloud.ebs import VolumeStore
from repro.cloud.spot_market import REVOCATION_GRACE_S, SpotMarket
from repro.cloud.startup import StartupSampler
from repro.cloud.vpc import VirtualPrivateCloud
from repro.errors import InstanceNotHeldError, MarketError
from repro.obs.events import LeaseAcquired, LeaseTerminated
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.traces.catalog import MarketKey, TraceCatalog

__all__ = ["LeaseKind", "Lease", "CloudProvider"]


class LeaseKind(enum.Enum):
    """Whether a lease is a revocable spot server or a non-revocable one."""

    SPOT = "spot"
    ON_DEMAND = "on_demand"


@dataclass
class Lease:
    """One server allocation, from request to termination.

    The service runs on the lease from ``ready_at`` until ``ended_at``;
    billing covers the same interval.
    """

    lease_id: str
    kind: LeaseKind
    market: MarketKey
    requested_at: float
    ready_at: float
    bid: Optional[float] = None  #: spot only
    ended_at: Optional[float] = None
    end_reason: str = ""
    #: Billed hours in array form, set at termination (None while active
    #: or when nothing was billed). ``records`` materialises it on demand.
    billing: Optional[LeaseBilling] = None

    @property
    def active(self) -> bool:
        return self.ended_at is None

    @property
    def records(self) -> List[BillingRecord]:
        """Per-hour billing records, materialised lazily from ``billing``."""
        return [] if self.billing is None else self.billing.records()

    @property
    def total_cost(self) -> float:
        return 0.0 if self.billing is None else self.billing.total

    def duration(self) -> float:
        if self.ended_at is None:
            raise MarketError(f"lease {self.lease_id} still active")
        return self.ended_at - self.ready_at


class CloudProvider:
    """Simulated IaaS provider over a :class:`TraceCatalog`.

    Parameters
    ----------
    catalog:
        Price traces and on-demand prices per market.
    rng:
        Generator for startup-latency sampling.
    grace_s:
        Revocation warning-to-termination window (default two minutes).
    startup_cv:
        Dispersion of startup latencies (0 makes them deterministic —
        useful in tests).
    sink:
        A :class:`repro.obs.TraceSink` receiving lease-lifecycle events
        (:class:`~repro.obs.LeaseAcquired` / :class:`~repro.obs.LeaseTerminated`).
        The default null sink makes this free.
    """

    def __init__(
        self,
        catalog: TraceCatalog,
        rng: np.random.Generator,
        grace_s: float = REVOCATION_GRACE_S,
        startup_cv: float = 0.25,
        sink: TraceSink = NULL_SINK,
    ) -> None:
        self.catalog = catalog
        self.sink = sink
        self.grace_s = float(grace_s)
        self.startup = StartupSampler(rng, cv=startup_cv)
        self.volumes = VolumeStore()
        self.vpc = VirtualPrivateCloud()
        self._markets: Dict[MarketKey, SpotMarket] = {}
        self._ids = itertools.count(1)
        self._active: Dict[str, Lease] = {}

    # ---------------------------------------------------------------- markets
    def market(self, key: MarketKey) -> SpotMarket:
        """The spot market for one (zone, size) pair."""
        m = self._markets.get(key)
        if m is None:
            m = SpotMarket(
                name=str(key),
                trace=self.catalog.trace(key),
                on_demand_price=self.catalog.on_demand_price(key),
                grace_s=self.grace_s,
            )
            self._markets[key] = m
        return m

    def on_demand_price(self, key: MarketKey) -> float:
        """Fixed hourly price of the non-revocable flavour of a market."""
        return self.catalog.on_demand_price(key)

    def markets(self) -> List[MarketKey]:
        return self.catalog.markets()

    # ----------------------------------------------------------------- leases
    def request_spot(self, key: MarketKey, bid: float, t: float) -> Lease:
        """Request a spot server; raises if the bid is rejected right now.

        The server becomes usable at ``ready_at`` after the sampled spot
        allocation latency (3.5-4.5 min, Table 1).
        """
        market = self.market(key)
        market.require_grantable(bid, t)
        delay = self.startup.sample("spot", key.region)
        lease = Lease(
            lease_id=f"sir-{next(self._ids):06d}",
            kind=LeaseKind.SPOT,
            market=key,
            requested_at=t,
            ready_at=t + delay,
            bid=float(bid),
        )
        self._active[lease.lease_id] = lease
        if self.sink.enabled:
            self.sink.emit(
                LeaseAcquired(
                    t=t,
                    market=str(key),
                    kind="spot",
                    lease_id=lease.lease_id,
                    ready_at=lease.ready_at,
                    bid=lease.bid,
                )
            )
        return lease

    def request_on_demand(self, key: MarketKey, t: float) -> Lease:
        """Request a non-revocable server (~1.5 min allocation, Table 1)."""
        delay = self.startup.sample("on_demand", key.region)
        lease = Lease(
            lease_id=f"i-{next(self._ids):06d}",
            kind=LeaseKind.ON_DEMAND,
            market=key,
            requested_at=t,
            ready_at=t + delay,
        )
        self._active[lease.lease_id] = lease
        if self.sink.enabled:
            self.sink.emit(
                LeaseAcquired(
                    t=t,
                    market=str(key),
                    kind="on_demand",
                    lease_id=lease.lease_id,
                    ready_at=lease.ready_at,
                )
            )
        return lease

    def revocation_warning_time(self, lease: Lease, from_t: float) -> Optional[float]:
        """Next revocation warning for a spot lease, or ``None``.

        On-demand leases are never revoked.
        """
        self._require_active(lease)
        if lease.kind is not LeaseKind.SPOT:
            return None
        assert lease.bid is not None
        return self.market(lease.market).revocation_warning_time(lease.bid, from_t)

    def terminate(self, lease: Lease, t: float, *, revoked: bool = False, reason: str = "") -> Lease:
        """End a lease at time ``t`` and materialise its billing records.

        ``revoked`` must be true for provider-initiated spot terminations so
        the final partial hour is not billed.
        """
        self._require_active(lease)
        if t < lease.ready_at:
            # Cancelled before it ever became ready: nothing billed.
            lease.ended_at = lease.ready_at
            lease.end_reason = reason or "cancelled"
            lease.billing = None
            del self._active[lease.lease_id]
            self._emit_terminated(lease, t, revoked=False)
            return lease
        if revoked and lease.kind is not LeaseKind.SPOT:
            raise MarketError("on-demand leases cannot be revoked")
        lease.ended_at = float(t)
        lease.end_reason = reason or ("revoked" if revoked else "terminated")
        if lease.kind is LeaseKind.SPOT:
            lease.billing = spot_lease_billing(
                self.catalog.trace(lease.market), lease.ready_at, t, revoked
            )
        else:
            lease.billing = on_demand_lease_billing(
                self.on_demand_price(lease.market), lease.ready_at, t
            )
        del self._active[lease.lease_id]
        self._emit_terminated(lease, t, revoked=revoked)
        return lease

    def _emit_terminated(self, lease: Lease, t: float, *, revoked: bool) -> None:
        if self.sink.enabled:
            self.sink.emit(
                LeaseTerminated(
                    t=t,
                    market=str(lease.market),
                    kind=lease.kind.value,
                    lease_id=lease.lease_id,
                    reason=lease.end_reason,
                    revoked=revoked,
                    billed=lease.total_cost,
                )
            )

    def active_leases(self) -> List[Lease]:
        """Currently held (unterminated) leases."""
        return list(self._active.values())

    def _require_active(self, lease: Lease) -> None:
        if lease.lease_id not in self._active:
            raise InstanceNotHeldError(f"lease {lease.lease_id} is not active")
