"""Hourly billing semantics for spot and on-demand leases.

EC2's 2015-era rules, as described in Section 2.1 of the paper:

* **Spot**: "billed on an hourly basis, based on the spot price (not the
  bid price) at the beginning of each hour. Partial hours are not billed if
  a spot server is revoked before the end of an hourly billing period."
  Conversely, a *voluntarily* terminated partial hour is billed in full —
  which is exactly why the scheduler times planned and reverse migrations
  "near the end of a billing period".
* **On-demand**: fixed hourly price, partial hours rounded up.

Billing hour boundaries are anchored at the *lease start*, not wall-clock
hours.

Hour comparisons use a relative epsilon: lease endpoints are produced by
float arithmetic (``start + k * 3600.0`` sums, migration timing near
boundary instants), so a lease that is N hours long *up to float noise*
(e.g. ``end - start == 3 * 3600 - 1e-9``) must bill exactly N full hours —
not N-1 full hours plus a spurious "voluntary-full" partial. Any genuine
partial hour shorter than the tolerance (about a nanosecond per simulated
second) is billing noise by construction and is dropped with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import MarketError
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = ["BillingRecord", "bill_spot_lease", "bill_on_demand_lease", "billing_boundaries"]

#: Relative tolerance for hour-boundary comparisons.
_REL_EPS = 1e-9


def _boundary_tolerance(start: float, end: float) -> float:
    """Absolute slack for hour comparisons on the lease ``[start, end)``.

    Scaled to the magnitudes involved so month-long simulations (times
    around 2.6e6 s) and rebased traces (times near 0) both absorb one-ulp
    noise without ever approaching a billable fraction of an hour.
    """
    return _REL_EPS * max(abs(start), abs(end), SECONDS_PER_HOUR)


@dataclass(frozen=True)
class BillingRecord:
    """One billed hour of one lease."""

    hour_start: float  #: absolute sim time of the billing hour start
    rate: float  #: USD/hour charged for this hour
    amount: float  #: USD actually charged (rate, or 0 for a free revoked hour)
    kind: str  #: 'spot' or 'on_demand'
    note: str = ""


def billing_boundaries(start: float, end: float) -> List[float]:
    """Hour boundaries of a lease on (start, end): start+1h, start+2h, ...

    Returns every boundary strictly inside the lease plus the one at or
    after ``end`` is *not* included; callers reason about the final partial
    hour explicitly.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    tol = _boundary_tolerance(start, end)
    out = []
    k = 1
    # A boundary landing within tolerance of `end` coincides with it (the
    # lease is an exact number of hours up to float noise), so it is not
    # strictly inside the lease.
    while start + k * SECONDS_PER_HOUR < end - tol:
        out.append(start + k * SECONDS_PER_HOUR)
        k += 1
    return out


def bill_spot_lease(
    trace: PriceTrace,
    start: float,
    end: float,
    revoked: bool,
) -> List[BillingRecord]:
    """Bill a spot lease running on [start, end).

    Full hours are charged at the spot price in force at the hour's start.
    The final partial hour (if any) is free when ``revoked``, and charged
    at its start-of-hour price otherwise.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    records: List[BillingRecord] = []
    if end == start:
        return records
    tol = _boundary_tolerance(start, end)
    # An N-hour lease with up-to-tolerance float noise on either side
    # counts exactly N full hours.
    n_full = int(math.floor((end - start + tol) / SECONDS_PER_HOUR))
    for k in range(n_full):
        hs = start + k * SECONDS_PER_HOUR
        rate = float(trace.price_at(hs))
        records.append(BillingRecord(hs, rate, rate, "spot"))
    last_start = start + n_full * SECONDS_PER_HOUR
    if last_start < end - tol:
        rate = float(trace.price_at(last_start))
        if revoked:
            records.append(BillingRecord(last_start, rate, 0.0, "spot", note="revoked-free"))
        else:
            records.append(BillingRecord(last_start, rate, rate, "spot", note="voluntary-full"))
    return records


def bill_on_demand_lease(rate: float, start: float, end: float) -> List[BillingRecord]:
    """Bill an on-demand lease: fixed rate, partial hours rounded up."""
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    if rate < 0:
        raise MarketError(f"negative on-demand rate {rate}")
    records: List[BillingRecord] = []
    if end == start:
        return records
    tol = _boundary_tolerance(start, end)
    # Round up, but never on float noise alone: an N-hour lease plus a
    # sub-tolerance sliver is N hours, not N+1.
    n_hours = int(math.ceil((end - start - tol) / SECONDS_PER_HOUR))
    for k in range(n_hours):
        hs = start + k * SECONDS_PER_HOUR
        records.append(BillingRecord(hs, rate, rate, "on_demand"))
    return records
