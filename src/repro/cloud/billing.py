"""Hourly billing semantics for spot and on-demand leases.

EC2's 2015-era rules, as described in Section 2.1 of the paper:

* **Spot**: "billed on an hourly basis, based on the spot price (not the
  bid price) at the beginning of each hour. Partial hours are not billed if
  a spot server is revoked before the end of an hourly billing period."
  Conversely, a *voluntarily* terminated partial hour is billed in full —
  which is exactly why the scheduler times planned and reverse migrations
  "near the end of a billing period".
* **On-demand**: fixed hourly price, partial hours rounded up.

Billing hour boundaries are anchored at the *lease start*, not wall-clock
hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import MarketError
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = ["BillingRecord", "bill_spot_lease", "bill_on_demand_lease", "billing_boundaries"]


@dataclass(frozen=True)
class BillingRecord:
    """One billed hour of one lease."""

    hour_start: float  #: absolute sim time of the billing hour start
    rate: float  #: USD/hour charged for this hour
    amount: float  #: USD actually charged (rate, or 0 for a free revoked hour)
    kind: str  #: 'spot' or 'on_demand'
    note: str = ""


def billing_boundaries(start: float, end: float) -> List[float]:
    """Hour boundaries of a lease on (start, end): start+1h, start+2h, ...

    Returns every boundary strictly inside the lease plus the one at or
    after ``end`` is *not* included; callers reason about the final partial
    hour explicitly.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    out = []
    k = 1
    while start + k * SECONDS_PER_HOUR < end:
        out.append(start + k * SECONDS_PER_HOUR)
        k += 1
    return out


def bill_spot_lease(
    trace: PriceTrace,
    start: float,
    end: float,
    revoked: bool,
) -> List[BillingRecord]:
    """Bill a spot lease running on [start, end).

    Full hours are charged at the spot price in force at the hour's start.
    The final partial hour (if any) is free when ``revoked``, and charged
    at its start-of-hour price otherwise.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    records: List[BillingRecord] = []
    if end == start:
        return records
    n_full = int(math.floor((end - start) / SECONDS_PER_HOUR))
    for k in range(n_full):
        hs = start + k * SECONDS_PER_HOUR
        rate = float(trace.price_at(hs))
        records.append(BillingRecord(hs, rate, rate, "spot"))
    last_start = start + n_full * SECONDS_PER_HOUR
    if last_start < end:
        rate = float(trace.price_at(last_start))
        if revoked:
            records.append(BillingRecord(last_start, rate, 0.0, "spot", note="revoked-free"))
        else:
            records.append(BillingRecord(last_start, rate, rate, "spot", note="voluntary-full"))
    return records


def bill_on_demand_lease(rate: float, start: float, end: float) -> List[BillingRecord]:
    """Bill an on-demand lease: fixed rate, partial hours rounded up."""
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    if rate < 0:
        raise MarketError(f"negative on-demand rate {rate}")
    records: List[BillingRecord] = []
    if end == start:
        return records
    n_hours = int(math.ceil((end - start) / SECONDS_PER_HOUR))
    for k in range(n_hours):
        hs = start + k * SECONDS_PER_HOUR
        records.append(BillingRecord(hs, rate, rate, "on_demand"))
    return records
