"""Hourly billing semantics for spot and on-demand leases.

EC2's 2015-era rules, as described in Section 2.1 of the paper:

* **Spot**: "billed on an hourly basis, based on the spot price (not the
  bid price) at the beginning of each hour. Partial hours are not billed if
  a spot server is revoked before the end of an hourly billing period."
  Conversely, a *voluntarily* terminated partial hour is billed in full —
  which is exactly why the scheduler times planned and reverse migrations
  "near the end of a billing period".
* **On-demand**: fixed hourly price, partial hours rounded up.

Billing hour boundaries are anchored at the *lease start*, not wall-clock
hours.

Hour comparisons use a relative epsilon: lease endpoints are produced by
float arithmetic (``start + k * 3600.0`` sums, migration timing near
boundary instants), so a lease that is N hours long *up to float noise*
(e.g. ``end - start == 3 * 3600 - 1e-9``) must bill exactly N full hours —
not N-1 full hours plus a spurious "voluntary-full" partial. Any genuine
partial hour shorter than the tolerance (about a nanosecond per simulated
second) is billing noise by construction and is dropped with it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import MarketError
from repro.traces.trace import PriceTrace
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "BillingRecord",
    "LeaseBilling",
    "spot_lease_billing",
    "on_demand_lease_billing",
    "bill_spot_lease",
    "bill_on_demand_lease",
    "billing_boundaries",
]

#: Relative tolerance for hour-boundary comparisons.
_REL_EPS = 1e-9


def _boundary_tolerance(start: float, end: float) -> float:
    """Absolute slack for hour comparisons on the lease ``[start, end)``.

    Scaled to the magnitudes involved so month-long simulations (times
    around 2.6e6 s) and rebased traces (times near 0) both absorb one-ulp
    noise without ever approaching a billable fraction of an hour.
    """
    return _REL_EPS * max(abs(start), abs(end), SECONDS_PER_HOUR)


@dataclass(frozen=True)
class BillingRecord:
    """One billed hour of one lease."""

    hour_start: float  #: absolute sim time of the billing hour start
    rate: float  #: USD/hour charged for this hour
    amount: float  #: USD actually charged (rate, or 0 for a free revoked hour)
    kind: str  #: 'spot' or 'on_demand'
    note: str = ""


def billing_boundaries(start: float, end: float) -> List[float]:
    """Hour boundaries of a lease on (start, end): start+1h, start+2h, ...

    Returns every boundary strictly inside the lease plus the one at or
    after ``end`` is *not* included; callers reason about the final partial
    hour explicitly.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    tol = _boundary_tolerance(start, end)
    out = []
    k = 1
    # A boundary landing within tolerance of `end` coincides with it (the
    # lease is an exact number of hours up to float noise), so it is not
    # strictly inside the lease.
    while start + k * SECONDS_PER_HOUR < end - tol:
        out.append(start + k * SECONDS_PER_HOUR)
        k += 1
    return out


class LeaseBilling:
    """One lease's billed hours, held as parallel arrays.

    The array form exists because a month-long run bills ~720 hours and
    materialising a :class:`BillingRecord` per hour dominated batch-sweep
    profiles. Hour starts are ``start + k * 3600.0`` computed elementwise
    (the identical float operation the per-hour loop performed), and
    rates come from the trace's array ``price_at`` (the same
    ``searchsorted`` indices the scalar bisect produces), so
    :meth:`records` materialises byte-identical values on demand.

    ``final_note`` annotates the last hour only (``"revoked-free"`` /
    ``"voluntary-full"``), matching the scalar billing rules.
    """

    __slots__ = ("hour_starts", "rates", "amounts", "kind", "final_note", "_records")

    def __init__(
        self,
        hour_starts: np.ndarray,
        rates: np.ndarray,
        amounts: np.ndarray,
        kind: str,
        final_note: str = "",
    ) -> None:
        self.hour_starts = hour_starts
        self.rates = rates
        self.amounts = amounts
        self.kind = kind
        self.final_note = final_note
        self._records: Optional[List[BillingRecord]] = None

    def __len__(self) -> int:
        return len(self.hour_starts)

    @property
    def total(self) -> float:
        """Total charged, summed left-to-right like ``sum`` over records."""
        total = 0.0
        for a in self.amounts.tolist():
            total += a
        return total

    def records(self) -> List[BillingRecord]:
        """Materialise (and cache) the per-hour :class:`BillingRecord` list."""
        if self._records is None:
            n = len(self.hour_starts)
            hs = self.hour_starts.tolist()
            rates = self.rates.tolist()
            amounts = self.amounts.tolist()
            self._records = [
                BillingRecord(
                    hs[i],
                    rates[i],
                    amounts[i],
                    self.kind,
                    note=self.final_note if i == n - 1 else "",
                )
                for i in range(n)
            ]
        return self._records


_EMPTY = np.empty(0, dtype=np.float64)


def spot_lease_billing(
    trace: PriceTrace,
    start: float,
    end: float,
    revoked: bool,
) -> LeaseBilling:
    """Bill a spot lease running on [start, end), as arrays.

    Full hours are charged at the spot price in force at the hour's start.
    The final partial hour (if any) is free when ``revoked``, and charged
    at its start-of-hour price otherwise.
    """
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    if end == start:
        return LeaseBilling(_EMPTY, _EMPTY, _EMPTY, "spot")
    tol = _boundary_tolerance(start, end)
    # An N-hour lease with up-to-tolerance float noise on either side
    # counts exactly N full hours.
    n_full = int(math.floor((end - start + tol) / SECONDS_PER_HOUR))
    last_start = start + n_full * SECONDS_PER_HOUR
    partial = last_start < end - tol
    n = n_full + (1 if partial else 0)
    # Identical floats to the scalar loop: k * 3600.0 then start + x.
    hour_starts = start + np.arange(n, dtype=np.float64) * SECONDS_PER_HOUR
    rates = trace.prices[trace._index_at(hour_starts)]
    note = ""
    amounts = rates
    if partial and revoked:
        note = "revoked-free"
        amounts = rates.copy()
        amounts[-1] = 0.0
    elif partial:
        note = "voluntary-full"
    return LeaseBilling(hour_starts, rates, amounts, "spot", final_note=note)


def on_demand_lease_billing(rate: float, start: float, end: float) -> LeaseBilling:
    """Bill an on-demand lease as arrays: fixed rate, partials round up."""
    if end < start:
        raise MarketError(f"lease ends before it starts: [{start}, {end}]")
    if rate < 0:
        raise MarketError(f"negative on-demand rate {rate}")
    if end == start:
        return LeaseBilling(_EMPTY, _EMPTY, _EMPTY, "on_demand")
    tol = _boundary_tolerance(start, end)
    # Round up, but never on float noise alone: an N-hour lease plus a
    # sub-tolerance sliver is N hours, not N+1.
    n_hours = int(math.ceil((end - start - tol) / SECONDS_PER_HOUR))
    hour_starts = start + np.arange(n_hours, dtype=np.float64) * SECONDS_PER_HOUR
    rates = np.full(n_hours, float(rate), dtype=np.float64)
    return LeaseBilling(hour_starts, rates, rates, "on_demand")


def bill_spot_lease(
    trace: PriceTrace,
    start: float,
    end: float,
    revoked: bool,
) -> List[BillingRecord]:
    """Record-list form of :func:`spot_lease_billing` (same values)."""
    return spot_lease_billing(trace, start, end, revoked).records()


def bill_on_demand_lease(rate: float, start: float, end: float) -> List[BillingRecord]:
    """Record-list form of :func:`on_demand_lease_billing` (same values)."""
    return on_demand_lease_billing(rate, start, end).records()
