"""Server startup (allocation) latency models — Table 1 of the paper.

Measured mean startup times (seconds):

==============  ========  ========  ========
Instance mode   US East   US West   EU West
==============  ========  ========  ========
On-demand          94.85     93.63     98.08
Spot              281.47    219.77    233.37
==============  ========  ========  ========

Startup latency matters twice in the scheduler: (i) during a *forced*
migration the on-demand replacement must be requested at the revocation
warning and races the 120 s grace window; (ii) during a *reverse* migration
the 3.5-4.5 minute spot startup is paid while still (safely) running
on-demand. Latencies are sampled lognormally around the measured means
with a modest dispersion, reflecting the paper's "multiple runs".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.regions import region_of
from repro.errors import ConfigurationError

__all__ = ["StartupModel", "StartupSampler", "STARTUP_MEANS_S"]

#: Measured mean startup latency in seconds, per geo region (Table 1).
STARTUP_MEANS_S: dict[str, dict[str, float]] = {
    "on_demand": {"us-east": 94.85, "us-west": 93.63, "eu-west": 98.08},
    "spot": {"us-east": 281.47, "us-west": 219.77, "eu-west": 233.37},
}


@dataclass(frozen=True)
class StartupModel:
    """Lognormal startup-latency distribution with a given mean.

    ``cv`` is the coefficient of variation (std/mean). The minimum clips
    unrealistically fast allocations (API round-trips alone take seconds).
    """

    mean_s: float
    cv: float = 0.25
    min_s: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ConfigurationError("startup mean must be positive")
        if self.cv < 0:
            raise ConfigurationError("startup cv must be >= 0")

    def sample(self, rng: np.random.Generator, n: int | None = None) -> float | np.ndarray:
        """Draw startup latency samples (seconds)."""
        if self.cv == 0:
            out = np.full(n or 1, self.mean_s)
        else:
            sigma2 = np.log(1.0 + self.cv**2)
            mu = np.log(self.mean_s) - sigma2 / 2.0
            out = rng.lognormal(mu, np.sqrt(sigma2), size=n or 1)
        out = np.maximum(out, self.min_s)
        if n is None:
            return float(out[0])
        return out

    @property
    def std_s(self) -> float:
        """Standard deviation implied by the mean and cv."""
        return self.mean_s * self.cv


class StartupSampler:
    """Samples startup latencies for (mode, availability zone) pairs."""

    def __init__(self, rng: np.random.Generator, cv: float = 0.25) -> None:
        self.rng = rng
        self._models: dict[tuple[str, str], StartupModel] = {}
        for mode, tbl in STARTUP_MEANS_S.items():
            for geo, mean in tbl.items():
                self._models[(mode, geo)] = StartupModel(mean_s=mean, cv=cv)

    def model(self, mode: str, zone: str) -> StartupModel:
        """The distribution for a mode ('on_demand'/'spot') in a zone."""
        geo = region_of(zone).geo
        try:
            return self._models[(mode, geo)]
        except KeyError as exc:
            raise ConfigurationError(f"unknown startup mode {mode!r}") from exc

    def sample(self, mode: str, zone: str) -> float:
        """One startup latency draw in seconds."""
        return float(self.model(mode, zone).sample(self.rng))

    def sample_many(self, mode: str, zone: str, n: int) -> np.ndarray:
        """``n`` startup latency draws (for the Table 1 micro-benchmark)."""
        return np.asarray(self.model(mode, zone).sample(self.rng, n))
