"""Server startup (allocation) latency models — Table 1 of the paper.

Measured mean startup times (seconds):

==============  ========  ========  ========
Instance mode   US East   US West   EU West
==============  ========  ========  ========
On-demand          94.85     93.63     98.08
Spot              281.47    219.77    233.37
==============  ========  ========  ========

Startup latency matters twice in the scheduler: (i) during a *forced*
migration the on-demand replacement must be requested at the revocation
warning and races the 120 s grace window; (ii) during a *reverse* migration
the 3.5-4.5 minute spot startup is paid while still (safely) running
on-demand. Latencies are sampled lognormally around the measured means
with a modest dispersion, reflecting the paper's "multiple runs".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cloud.regions import region_of
from repro.errors import ConfigurationError

__all__ = ["StartupModel", "StartupSampler", "STARTUP_MEANS_S"]

#: Measured mean startup latency in seconds, per geo region (Table 1).
STARTUP_MEANS_S: dict[str, dict[str, float]] = {
    "on_demand": {"us-east": 94.85, "us-west": 93.63, "eu-west": 98.08},
    "spot": {"us-east": 281.47, "us-west": 219.77, "eu-west": 233.37},
}


@dataclass(frozen=True)
class StartupModel:
    """Lognormal startup-latency distribution with a given mean.

    ``cv`` is the coefficient of variation (std/mean). The minimum clips
    unrealistically fast allocations (API round-trips alone take seconds).
    """

    mean_s: float
    cv: float = 0.25
    min_s: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_s <= 0:
            raise ConfigurationError("startup mean must be positive")
        if self.cv < 0:
            raise ConfigurationError("startup cv must be >= 0")

    @cached_property
    def _lognormal_params(self) -> tuple[float, float]:
        """(mu, sigma) of the underlying normal, derived from mean and cv."""
        sigma2 = math.log(1.0 + self.cv**2)
        mu = math.log(self.mean_s) - sigma2 / 2.0
        return mu, math.sqrt(sigma2)

    def sample(self, rng: np.random.Generator, n: int | None = None) -> float | np.ndarray:
        """Draw startup latency samples (seconds)."""
        if n is None:
            # Scalar fast path: one draw consumes the identical stream state
            # (and produces the identical value) as ``size=1`` would.
            if self.cv == 0:
                return max(float(self.mean_s), self.min_s)
            mu, sigma = self._lognormal_params
            v = float(rng.lognormal(mu, sigma))
            return v if v > self.min_s else self.min_s
        if self.cv == 0:
            out = np.full(n, self.mean_s)
        else:
            mu, sigma = self._lognormal_params
            out = rng.lognormal(mu, sigma, size=n)
        return np.maximum(out, self.min_s)

    @property
    def std_s(self) -> float:
        """Standard deviation implied by the mean and cv."""
        return self.mean_s * self.cv


class StartupSampler:
    """Samples startup latencies for (mode, availability zone) pairs."""

    def __init__(self, rng: np.random.Generator, cv: float = 0.25) -> None:
        self.rng = rng
        self._models: dict[tuple[str, str], StartupModel] = {}
        for mode, tbl in STARTUP_MEANS_S.items():
            for geo, mean in tbl.items():
                self._models[(mode, geo)] = StartupModel(mean_s=mean, cv=cv)

    def model(self, mode: str, zone: str) -> StartupModel:
        """The distribution for a mode ('on_demand'/'spot') in a zone."""
        m = self._models.get((mode, zone))
        if m is not None:
            return m
        geo = region_of(zone).geo
        try:
            m = self._models[(mode, geo)]
        except KeyError as exc:
            raise ConfigurationError(f"unknown startup mode {mode!r}") from exc
        # Alias the zone spelling so repeat lookups skip region resolution
        # (zone names never collide with geo names).
        self._models[(mode, zone)] = m
        return m

    def sample(self, mode: str, zone: str) -> float:
        """One startup latency draw in seconds."""
        return float(self.model(mode, zone).sample(self.rng))

    def sample_many(self, mode: str, zone: str, n: int) -> np.ndarray:
        """``n`` startup latency draws (for the Table 1 micro-benchmark)."""
        return np.asarray(self.model(mode, zone).sample(self.rng, n))
