"""Spot-market semantics: bidding, granting, revocation with grace.

One :class:`SpotMarket` wraps one market's :class:`PriceTrace` and exposes
the queries the scheduler needs:

* is a request at bid ``b`` grantable now (price <= b)?
* when will a server bought at bid ``b`` be revoked (first price > b)?
* what is the provider's bid cap (4x on-demand on EC2 circa 2015)?

Revocation delivers a **warning** followed by a grace window (120 s, the
"two minute warning" Amazon formalised) before forcible termination.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BidRejectedError, BidTooHighError
from repro.traces.trace import PriceTrace

__all__ = ["SpotMarket", "BID_CAP_MULTIPLIER", "REVOCATION_GRACE_S"]

#: "The largest bid price currently allowed by Amazon is four times the
#: on-demand price" (Section 3.1, footnote).
BID_CAP_MULTIPLIER = 4.0

#: The two-minute warning before forcible termination (Section 2.1).
REVOCATION_GRACE_S = 120.0


@dataclass(frozen=True)
class SpotMarket:
    """One (availability zone, size) spot market.

    Attributes
    ----------
    name:
        ``region/size`` label for diagnostics.
    trace:
        The spot-price step function.
    on_demand_price:
        Price of the same configuration as a non-revocable server.
    grace_s:
        Warning-to-termination window on revocation.
    """

    name: str
    trace: PriceTrace
    on_demand_price: float
    grace_s: float = REVOCATION_GRACE_S

    @property
    def bid_cap(self) -> float:
        """Maximum bid the provider accepts."""
        return BID_CAP_MULTIPLIER * self.on_demand_price

    def validate_bid(self, bid: float) -> None:
        """Raise :class:`BidTooHighError` for bids above the provider cap."""
        if bid > self.bid_cap * (1 + 1e-9):
            raise BidTooHighError(bid, self.bid_cap, self.name)

    def price_at(self, t: float) -> float:
        """Spot price in force at time ``t``."""
        return float(self.trace.price_at(t))

    def grantable(self, bid: float, t: float) -> bool:
        """Would a request with this bid be granted at time ``t``?"""
        self.validate_bid(bid)
        return self.price_at(t) <= bid

    def require_grantable(self, bid: float, t: float) -> None:
        """Raise :class:`BidRejectedError` unless the bid clears the price."""
        if not self.grantable(bid, t):
            raise BidRejectedError(bid, self.price_at(t), self.name)

    def next_grant_time(self, bid: float, from_t: float) -> float | None:
        """Earliest time >= ``from_t`` at which a request would be granted.

        ``None`` if the price never returns to or below the bid within the
        trace horizon.
        """
        self.validate_bid(bid)
        return self.trace.first_time_at_or_below(bid, from_t)

    def revocation_warning_time(self, bid: float, from_t: float) -> float | None:
        """First time >= ``from_t`` the price exceeds the bid (warning instant).

        The server is forcibly terminated ``grace_s`` later. ``None`` means
        the bid survives to the trace horizon.
        """
        self.validate_bid(bid)
        return self.trace.first_time_above(bid, from_t)

    def termination_time(self, bid: float, from_t: float) -> float | None:
        """Forcible-termination instant implied by the next revocation."""
        warn = self.revocation_warning_time(bid, from_t)
        if warn is None:
            return None
        return warn + self.grace_s

    # --------------------------------------------------- crossing attribution
    def last_rise_above(self, threshold: float, at: float) -> float | None:
        """Most recent instant <= ``at`` the price rose above ``threshold``.

        Decision tracing uses this to attribute a boundary decision (made a
        lead time before the billing boundary) to the actual price-crossing
        instant that triggered it. ``None`` when the price never rose above
        the threshold by ``at``.
        """
        return self.trace.compiled.last_crossing_above_at_or_before(threshold, at)

    def last_fall_below(self, threshold: float, at: float) -> float | None:
        """Most recent instant <= ``at`` the price fell to/below ``threshold``
        (the reverse-migration trigger), or ``None``."""
        return self.trace.compiled.last_crossing_below_at_or_before(threshold, at)
