"""Networked storage volumes (EBS-style).

The paper's availability argument depends on disk state *surviving* a spot
revocation: "all data on the storage volume is preserved when the server is
revoked and the volume can simply be re-attached to the new on-demand
server" (Section 3). :class:`VolumeStore` models exactly that contract —
contents persist across detach/attach cycles and a volume can be attached
to at most one server at a time. Checkpoint images are written to volumes,
which is why they remain readable after the source server is gone.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import MarketError

__all__ = ["Volume", "VolumeStore"]


@dataclass
class Volume:
    """A networked block volume.

    ``contents`` maps object names (e.g. ``"root"``, ``"checkpoint"``) to
    opaque payload descriptors with a byte size; the simulator only tracks
    sizes and write times, not actual bytes.
    """

    volume_id: str
    zone: str
    size_gib: float
    attached_to: Optional[str] = None
    contents: Dict[str, tuple[float, float]] = field(default_factory=dict)
    #: (written_at, size_gib) per object name

    @property
    def attached(self) -> bool:
        return self.attached_to is not None

    def used_gib(self) -> float:
        """Total size of stored objects."""
        return sum(size for _, size in self.contents.values())


class VolumeStore:
    """Creates, attaches and persists volumes within one availability zone.

    Cross-zone attachment is not allowed, as on EC2 — cross-region
    migrations must *copy* disk state instead (Table 2)."""

    def __init__(self) -> None:
        self._volumes: Dict[str, Volume] = {}
        self._ids = itertools.count(1)

    def create(self, zone: str, size_gib: float) -> Volume:
        """Provision a new empty volume in ``zone``."""
        if size_gib <= 0:
            raise MarketError(f"volume size must be positive, got {size_gib}")
        vid = f"vol-{next(self._ids):06d}"
        vol = Volume(volume_id=vid, zone=zone, size_gib=size_gib)
        self._volumes[vid] = vol
        return vol

    def get(self, volume_id: str) -> Volume:
        try:
            return self._volumes[volume_id]
        except KeyError as exc:
            raise MarketError(f"unknown volume {volume_id}") from exc

    def attach(self, volume_id: str, server_id: str, zone: str) -> Volume:
        """Attach a volume to a server in the same zone.

        Raises
        ------
        MarketError
            If the volume is already attached or the zones differ.
        """
        vol = self.get(volume_id)
        if vol.attached:
            raise MarketError(f"{volume_id} already attached to {vol.attached_to}")
        if vol.zone != zone:
            raise MarketError(
                f"{volume_id} lives in {vol.zone}, cannot attach in {zone}; "
                "cross-region moves must copy disk state"
            )
        vol.attached_to = server_id
        return vol

    def detach(self, volume_id: str) -> Volume:
        """Detach a volume; contents persist. Idempotent."""
        vol = self.get(volume_id)
        vol.attached_to = None
        return vol

    def write(self, volume_id: str, name: str, size_gib: float, at: float) -> None:
        """Record an object written to an attached volume."""
        vol = self.get(volume_id)
        if not vol.attached:
            raise MarketError(f"cannot write to detached volume {volume_id}")
        if size_gib < 0:
            raise MarketError("object size must be >= 0")
        if vol.used_gib() - vol.contents.get(name, (0.0, 0.0))[1] + size_gib > vol.size_gib:
            raise MarketError(f"volume {volume_id} full")
        vol.contents[name] = (at, size_gib)

    def read(self, volume_id: str, name: str) -> tuple[float, float]:
        """Read an object descriptor; allowed even while detached (the data
        survives the server), mirroring re-attach-then-restore."""
        vol = self.get(volume_id)
        try:
            return vol.contents[name]
        except KeyError as exc:
            raise MarketError(f"volume {volume_id} has no object {name!r}") from exc

    def clone_to_zone(self, volume_id: str, zone: str) -> Volume:
        """Create a copy of a volume in another zone (the WAN disk copy of
        Table 2); the caller accounts for the transfer time."""
        src = self.get(volume_id)
        dst = self.create(zone, src.size_gib)
        dst.contents = dict(src.contents)
        return dst
