"""The instance-type catalog.

The paper evaluates small, medium, large and xlarge servers (EC2's classic
first-generation ladder). ``capacity_units`` encodes the packing arithmetic
of the multi-market strategy — a large server can host four small-sized
nested VMs ("a multi-market strategy involves packing multiple nested VMs
onto a larger spot or on-demand server", Section 4) — and ``memory_gib``
drives every migration-latency model in :mod:`repro.vm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["InstanceType", "INSTANCE_TYPES", "instance_type", "SIZE_ORDER"]

#: Canonical small-to-large ordering of the paper's sizes.
SIZE_ORDER = ("small", "medium", "large", "xlarge")


@dataclass(frozen=True)
class InstanceType:
    """A virtual-server configuration.

    Attributes
    ----------
    name:
        The paper's size label (``small`` .. ``xlarge``).
    ec2_name:
        The corresponding first-generation EC2 API name.
    vcpus:
        Virtual CPU count.
    memory_gib:
        RAM in GiB; sets checkpoint/migration data volumes.
    capacity_units:
        Number of small-equivalent nested VMs the server can host after
        reserving dom0 overhead (powers of two up the ladder).
    disk_gib:
        Root EBS volume size used for WAN disk-copy estimates.
    """

    name: str
    ec2_name: str
    vcpus: int
    memory_gib: float
    capacity_units: int
    disk_gib: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gib <= 0 or self.capacity_units <= 0:
            raise ConfigurationError(f"invalid instance type {self!r}")

    @property
    def nested_memory_gib(self) -> float:
        """Memory available to nested VMs after the dom0 reservation.

        Section 6.1: on a 3.75 GiB m3.medium the nested VM gets 3 GiB —
        a fixed fraction models the same reservation across sizes.
        """
        return self.memory_gib * 0.8


#: The four market sizes studied in the evaluation. Memory follows the
#: classic m1 ladder (1.7 / 3.75 / 7.5 / 15 GiB).
INSTANCE_TYPES: dict[str, InstanceType] = {
    "small": InstanceType("small", "m1.small", 1, 1.7, 1, 8.0),
    "medium": InstanceType("medium", "m1.medium", 1, 3.75, 2, 8.0),
    "large": InstanceType("large", "m1.large", 2, 7.5, 4, 8.0),
    "xlarge": InstanceType("xlarge", "m1.xlarge", 4, 15.0, 8, 8.0),
}


def instance_type(name: str) -> InstanceType:
    """Look up an instance type by its paper size label."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown instance type {name!r}; known: {sorted(INSTANCE_TYPES)}"
        ) from exc
