"""VPC-style address management.

The paper relies on "virtual private cloud [features] that allow customer
control over the assignment of IP addresses ... to ensure that the address
assigned to the nested VM on a spot server can be transparently reassigned
to an on-demand server upon migration" (Section 3.2). This module models
that contract: an :class:`ElasticIp` is bound to at most one server at a
time and can be re-bound instantly within a geo region; re-binding across
geo regions requires a (modelled) DNS/WAN reconfiguration delay, which is
one of the extra overheads of multi-region migration (Section 4, footnote).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cloud.regions import region_of
from repro.errors import MarketError

__all__ = ["ElasticIp", "VirtualPrivateCloud", "WAN_REBIND_DELAY_S"]

#: Network reconfiguration delay when an address moves across geo regions
#: (CloudNet-style WAN migration re-signalling, [21] in the paper).
WAN_REBIND_DELAY_S = 5.0


@dataclass
class ElasticIp:
    """A stable service address that follows the nested VM around."""

    address: str
    geo: str
    bound_to: Optional[str] = None  #: server id currently answering
    bound_zone: Optional[str] = None

    @property
    def bound(self) -> bool:
        return self.bound_to is not None


class VirtualPrivateCloud:
    """Allocates and re-binds service addresses."""

    def __init__(self) -> None:
        self._ips: Dict[str, ElasticIp] = {}
        self._counter = itertools.count(1)

    def allocate(self, zone: str) -> ElasticIp:
        """Allocate a new address homed in ``zone``'s geo region."""
        geo = region_of(zone).geo
        n = next(self._counter)
        ip = ElasticIp(address=f"10.0.{n // 256}.{n % 256}", geo=geo)
        self._ips[ip.address] = ip
        return ip

    def get(self, address: str) -> ElasticIp:
        try:
            return self._ips[address]
        except KeyError as exc:
            raise MarketError(f"unknown address {address}") from exc

    def bind(self, address: str, server_id: str, zone: str) -> float:
        """Bind (or re-bind) an address to a server.

        Returns the reconfiguration delay in seconds: 0 within the home geo
        (LAN re-binding is transparent), :data:`WAN_REBIND_DELAY_S` when the
        service moves to another geo (the address is re-homed).
        """
        ip = self.get(address)
        geo = region_of(zone).geo
        delay = 0.0
        if geo != ip.geo:
            delay = WAN_REBIND_DELAY_S
            ip.geo = geo
        ip.bound_to = server_id
        ip.bound_zone = zone
        return delay

    def unbind(self, address: str) -> None:
        """Detach the address from its server (service unreachable)."""
        ip = self.get(address)
        ip.bound_to = None
        ip.bound_zone = None
