#!/usr/bin/env python
"""Quickstart: host an always-on service on the spot market.

Runs the paper's headline configuration — a small us-east service under
the proactive bidding policy with checkpoint + lazy-restore + live
migration — against one month of simulated spot prices, and prints the
cost and availability next to the all-on-demand baseline.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    MarketKey,
    Mechanism,
    OnDemandOnlyStrategy,
    ProactiveBidding,
    SimulationConfig,
    SingleMarketStrategy,
    run_simulation,
)
from repro.units import days, fmt_duration, fmt_usd


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    key = MarketKey("us-east-1a", "small")

    base = dict(
        horizon_s=days(30),
        regions=("us-east-1a",),
        sizes=("small",),
        seed=seed,
    )

    ours = run_simulation(
        SimulationConfig(
            strategy=lambda: SingleMarketStrategy(key),
            bidding=ProactiveBidding(k=4.0),
            mechanism=Mechanism.CKPT_LR_LIVE,
            label="spot-scheduler",
            **base,
        )
    )
    baseline = run_simulation(
        SimulationConfig(
            strategy=lambda: OnDemandOnlyStrategy(key),
            label="on-demand-only",
            **base,
        )
    )

    print(f"30 days of hosting one '{key}' service (seed {seed})")
    print()
    print(f"{'':28s}{'on-demand only':>16s}{'spot scheduler':>16s}")
    print(f"{'total cost':28s}{fmt_usd(baseline.total_cost):>16s}{fmt_usd(ours.total_cost):>16s}")
    print(
        f"{'normalized cost':28s}{baseline.normalized_cost_percent:>15.1f}%"
        f"{ours.normalized_cost_percent:>15.1f}%"
    )
    print(
        f"{'unavailability':28s}{baseline.unavailability_percent:>15.4f}%"
        f"{ours.unavailability_percent:>15.4f}%"
    )
    print(
        f"{'downtime':28s}{fmt_duration(baseline.downtime_s):>16s}"
        f"{fmt_duration(ours.downtime_s):>16s}"
    )
    print(f"{'forced migrations':28s}{'-':>16s}{ours.forced_migrations:>16d}")
    print(f"{'planned/reverse migrations':28s}{'-':>16s}"
          f"{ours.planned_migrations + ours.reverse_migrations:>16d}")
    print()
    factor = baseline.total_cost / max(ours.total_cost, 1e-9)
    print(f"The scheduler hosted the service at 1/{factor:.1f} of the on-demand cost")
    nines = "meets" if ours.unavailability_percent <= 0.01 else "misses"
    print(f"and {nines} the four-nines availability target "
          f"({ours.unavailability_percent:.4f} % unavailable).")


if __name__ == "__main__":
    main()
