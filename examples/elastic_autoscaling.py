#!/usr/bin/env python
"""Autoscaling a web tier on the spot market.

Your service's stateless frontend needs 4 servers overnight and 12 at the
evening peak (quieter on weekends). Three ways to provision it:

1. dedicated hardware sized for the peak (the pre-cloud baseline);
2. elastic on-demand capacity (the cloud baseline);
3. an elastic *spot* fleet — this library's
   :class:`~repro.core.elastic.ElasticSpotFleet` — with reactive or
   predictive (lead-time) scaling.

Usage::

    python examples/elastic_autoscaling.py [seed]
"""

import sys

from repro.analysis.tables import Table
from repro.cloud.provider import CloudProvider
from repro.core.elastic import DemandCurve, ElasticSpotFleet
from repro.simulator.engine import Engine
from repro.simulator.rng import RngStreams
from repro.traces.catalog import build_catalog
from repro.units import days, hours


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 17
    horizon = days(30)
    demand = DemandCurve.diurnal(base=4, peak=12, peak_hour=20.0)

    cat = build_catalog(seed=seed, horizon=horizon,
                        regions=("us-east-1a", "us-east-1b"), sizes=("small",))
    runs = {}
    for label, lead in (("reactive", 0.0), ("predictive +2h", hours(2))):
        provider = CloudProvider(cat, rng=RngStreams(seed).get(f"ex/{label}"))
        fleet = ElasticSpotFleet(Engine(), provider, demand, cat.markets(),
                                 horizon=horizon, provision_lead_s=lead)
        runs[label] = fleet.run()

    any_run = next(iter(runs.values()))
    print(f"30 days of a diurnal web tier (4..12 small servers, seed {seed})\n")
    print(f"dedicated peak-provisioned servers would cost "
          f"${any_run.peak_on_demand_cost:.2f}")
    print(f"elastic on-demand capacity would cost     "
          f"${any_run.elastic_on_demand_cost:.2f}\n")

    t = Table(
        headers=("spot fleet", "cost $", "vs peak %", "vs elastic od %",
                 "shortfall %", "scale ups/downs", "revoked+replaced"),
    )
    for label, r in runs.items():
        t.add_row(label, r.total_cost, r.vs_peak_percent, r.vs_elastic_od_percent,
                  r.shortfall_fraction * 100, f"{r.scale_ups}/{r.scale_downs}",
                  r.replacements)
    print(t.render())
    print()
    print("Predictive scaling provisions against demand two hours ahead:")
    print("the fleet is already booted when the evening ramp arrives, so the")
    print("capacity shortfall all but disappears for a point or two of cost.")


if __name__ == "__main__":
    main()
