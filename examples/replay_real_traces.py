#!/usr/bin/env python
"""Replay archived AWS spot-price history through the scheduler.

The simulations ship with a calibrated synthetic price process, but any
market's real history — in the CSV shape emitted by
``aws ec2 describe-spot-price-history`` — can be loaded and replayed
directly. This example:

1. writes a demo CSV (a synthetic trace exported to the AWS format — swap
   in your own archive file);
2. loads it with :func:`repro.load_aws_csv`;
3. wraps it in a :class:`~repro.TraceCatalog` and runs the proactive and
   reactive policies on exactly those prices.

Usage::

    python examples/replay_real_traces.py [path/to/history.csv]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    MarketKey,
    ProactiveBidding,
    ReactiveBidding,
    SimulationConfig,
    SingleMarketStrategy,
    TraceCatalog,
    calibration_for,
    generate_trace,
    load_aws_csv,
    run_simulation,
    save_aws_csv,
)
from repro.analysis.tables import Table
from repro.units import days


def demo_csv() -> Path:
    """Create a demo history file (stand-in for a real archive)."""
    cal = calibration_for("us-east-1a", "small")
    trace = generate_trace(cal, days(30), seed=2015)
    path = Path(tempfile.mkdtemp()) / "m1.small-us-east-1a.csv"
    save_aws_csv(trace, path, instance_type="m1.small", availability_zone="us-east-1a")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_csv()
    print(f"loading spot history from {path}")

    trace = load_aws_csv(path, instance_type="m1.small", availability_zone="us-east-1a")
    key = MarketKey("us-east-1a", "small")
    on_demand = 0.06  # the matching on-demand price for this market
    catalog = TraceCatalog({key: trace}, {key: on_demand}, trace.horizon)
    print(f"loaded {len(trace)} price changes covering "
          f"{trace.duration / 86400:.1f} days; mean ${trace.mean_price():.4f}/hr")

    t = Table(headers=("policy", "norm cost %", "unavail %", "forced", "planned+rev"))
    for bidding in (ReactiveBidding(), ProactiveBidding()):
        r = run_simulation(
            SimulationConfig(
                strategy=lambda: SingleMarketStrategy(key),
                bidding=bidding,
                catalog=catalog,
                horizon_s=trace.horizon,
                label=bidding.name,
            )
        )
        t.add_row(
            bidding.name,
            r.normalized_cost_percent,
            r.unavailability_percent,
            r.forced_migrations,
            r.planned_migrations + r.reverse_migrations,
        )
    print(t.render())


if __name__ == "__main__":
    main()
