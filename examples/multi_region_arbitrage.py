#!/usr/bin/env python
"""Multi-region spot arbitrage for a fleet of nested VMs.

Hosts an 8-unit service fleet (e.g. eight small web frontends that can be
packed onto medium/large/xlarge servers) and compares four scopes:

1. single market (small, us-east-1a),
2. multi-market within us-east-1a,
3. greedy multi-region across us-east-1b + eu-west-1a,
4. the stability-aware multi-region extension (the paper's future work).

Shows the paper's Fig 8/9 story on one set of trace samples: each widening
of scope cuts cost; greedy region-chasing can cost availability, which the
stability-aware policy buys back.

Usage::

    python examples/multi_region_arbitrage.py [n_seeds]
"""

import sys

from repro import (
    MarketKey,
    MultiMarketStrategy,
    MultiRegionStrategy,
    ProactiveBidding,
    SimulationConfig,
    SingleMarketStrategy,
    StabilityAwareStrategy,
    aggregate,
    run_many,
)
from repro.analysis.tables import Table
from repro.units import days

PAIR = ("us-east-1b", "eu-west-1a")


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    seeds = [100 + i for i in range(n_seeds)]

    scopes = {
        "single market (small)": (
            lambda: SingleMarketStrategy(MarketKey("us-east-1b", "small")),
            ("us-east-1b",),
        ),
        "multi-market (us-east-1b)": (
            lambda: MultiMarketStrategy("us-east-1b", service_units=8),
            ("us-east-1b",),
        ),
        "multi-region (greedy)": (
            lambda: MultiRegionStrategy(PAIR, service_units=8),
            PAIR,
        ),
        "multi-region (stability-aware)": (
            lambda: StabilityAwareStrategy(PAIR, service_units=8, stability_weight=4.0),
            PAIR,
        ),
    }

    t = Table(
        headers=("scope", "norm cost %", "unavail %", "forced/hr", "planned+rev/hr"),
        title=f"8-unit fleet, {n_seeds} trace samples x 30 days",
    )
    for label, (strategy, regions) in scopes.items():
        cfg = SimulationConfig(
            strategy=strategy,
            bidding=ProactiveBidding(),
            horizon_s=days(30),
            regions=regions,
            label=label,
        )
        agg = aggregate(run_many(cfg, seeds), label=label)
        t.add_row(
            label,
            agg.normalized_cost_percent,
            agg.unavailability_percent,
            agg.forced_per_hour,
            agg.planned_reverse_per_hour,
        )
    print(t.render())
    print()
    print("Reading: wider market scope -> lower normalized cost (Fig 8a/9a);")
    print("the stability-aware variant trades a little of that cost for fewer")
    print("forced migrations in the volatile region (the Fig 9c fix).")


if __name__ == "__main__":
    main()
