#!/usr/bin/env python
"""Operating a derivative cloud: tenant placement vs spare capacity.

You run a SpotCheck-style platform: 12 customer services hosted on spot
servers, with warm on-demand spares absorbing revocations. How you place
tenants across markets decides how many spares you must keep:

* put everyone in the cheapest market and one sharp price spike revokes
  the whole fleet at once — you need a spare per tenant;
* spread tenants across markets/AZs and co-revocations are bounded by the
  tenants-per-market count — a fraction of the fleet in spares suffices.

Usage::

    python examples/derivative_cloud_pool.py [n_services] [seed]
"""

import sys

from repro.analysis.tables import Table
from repro.pool import PoolConfig, SpotPool

REGIONS = ("us-east-1a", "us-east-1b", "us-west-1a", "eu-west-1a")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 9

    t = Table(
        headers=("placement", "norm cost %", "mean unavail %",
                 "forced migrations", "spares needed", "spare fraction"),
        title=f"{n} tenant services, 30 days, {len(REGIONS)} AZs (seed {seed})",
    )
    for placement in ("concentrated", "diverse"):
        pool = SpotPool(PoolConfig(
            n_services=n, placement=placement, seed=seed, regions=REGIONS,
        ))
        r = pool.run()
        t.add_row(
            placement, r.normalized_cost_percent, r.mean_unavailability_percent,
            r.total_forced, r.spare_servers_needed, r.spare_fraction,
        )
    print(t.render())
    print()
    print("Reading: the concentrated pool is cheaper per hour but must keep a")
    print("spare for every tenant; the diverse pool pays a few points more and")
    print("covers its worst burst with a fraction of the fleet — statistical")
    print("multiplexing is what makes a derivative cloud's economics work.")


if __name__ == "__main__":
    main()
