#!/usr/bin/env python
"""Choosing a migration mechanism for an e-commerce site.

The intro's motivating workload: an always-on store where minutes of
downtime cost real revenue. This example sizes the four migration-mechanism
combinations against the store's own parameters — VM memory footprint,
acceptable downtime budget, revenue at risk — and recommends one.

It exercises the vm-layer API directly (no market simulation): the
checkpointer, restore models and migration timings that Figure 7 is built
from, across instance sizes.

Usage::

    python examples/ecommerce_migration_planning.py
"""

from repro.cloud.instance_types import SIZE_ORDER, instance_type
from repro.cloud.regions import link_between
from repro.analysis.tables import Table
from repro.vm import (
    BoundedCheckpointer,
    Mechanism,
    MigrationModel,
    TYPICAL_PARAMS,
)
from repro.vm.memory import MemoryProfile

#: Revenue the store loses per minute of blackout (USD) — the paper cites
#: large e-tailers losing significantly from even a few minutes down [14].
REVENUE_PER_MINUTE = 180.0
#: Expected revocations per month in the chosen market (us-east small-ish).
REVOCATIONS_PER_MONTH = 2.0
#: Planned + reverse migrations per month under proactive bidding.
PLANNED_PER_MONTH = 18.0


def main() -> None:
    link = link_between("us-east-1a", "us-east-1a")

    for size in SIZE_ORDER:
        it = instance_type(size)
        mem = MemoryProfile(size_gib=it.nested_memory_gib)
        ck = BoundedCheckpointer(mem, tau_s=TYPICAL_PARAMS.tau_s)
        print(f"=== {size} ({it.ec2_name}): nested VM with "
              f"{mem.size_gib:.1f} GiB RAM ===")
        period = ck.steady_state_period_s()
        period_txt = "as-needed (working set fits the bound)" if period == float(
            "inf"
        ) else f"every {period:.0f}s"
        print(f"    background checkpoints: {period_txt}, "
              f"storage bandwidth used: {ck.background_bandwidth_fraction():.0%}")

        t = Table(
            headers=("mechanism", "forced down (s)", "planned down (s)",
                     "monthly downtime (min)", "revenue at risk ($/mo)"),
        )
        best = None
        for mech in Mechanism:
            model = MigrationModel(mech, TYPICAL_PARAMS)
            forced = model.forced(mem, link, grace_s=120.0, target_ready_after_s=95.0)
            planned = model.planned(mem, link)
            monthly_s = (
                REVOCATIONS_PER_MONTH * forced.downtime_s
                + PLANNED_PER_MONTH * planned.downtime_s
            )
            risk = monthly_s / 60.0 * REVENUE_PER_MINUTE
            t.add_row(mech.label, forced.downtime_s, planned.downtime_s,
                      monthly_s / 60.0, risk)
            if best is None or risk < best[1]:
                best = (mech, risk)
        print(t.render())
        assert best is not None
        print(f"    -> recommend {best[0].label}: "
              f"${best[1]:,.0f}/month of revenue at risk\n")


if __name__ == "__main__":
    main()
