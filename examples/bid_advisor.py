#!/usr/bin/env python
"""What should we bid? Empirical bid analysis for one spot market.

Sweeps bid prices over a month of us-east-1a small-market history and
prints, for each bid: how often the server would be revoked, how long a
pure-spot tenant would be dark per revocation, what the server actually
costs while held, and a total-cost estimate for a migrating scheduler.
Ends with a recommendation under a revocation budget.

This is the Section 3.1 trade-off made operational — and it shows why the
paper's proactive policy bids the 4x cap: the cost curve is nearly flat in
the bid while the revocation rate keeps falling.

Usage::

    python examples/bid_advisor.py [seed] [max_revocations_per_month]
"""

import sys

from repro.analysis.bid_advisor import BidAnalysis
from repro.analysis.tables import Table
from repro.traces.calibration import calibration_for, on_demand_price
from repro.traces.generator import generate_trace
from repro.units import days


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0

    region, size = "us-east-1a", "small"
    od = on_demand_price(region, size)
    trace = generate_trace(calibration_for(region, size), days(30), seed=seed)
    print(f"{region}/{size}: 30 days, mean ${trace.mean_price():.4f}/hr, "
          f"on-demand ${od:.2f}/hr\n")

    advisor = BidAnalysis(trace, od)
    t = Table(
        headers=("bid ($/hr)", "bid/od", "revocations/mo", "MTBR (h)",
                 "mean outage (min)", "$/hr while held", "est total $/hr"),
        title="bid sweep",
    )
    for p in advisor.sweep(advisor.default_grid(9)):
        t.add_row(
            p.bid, p.bid / od, p.revocations_per_hour * 720,
            p.mean_time_between_revocations_h, p.mean_outage_s / 60,
            p.mean_price_while_held, p.est_cost_per_hour,
        )
    print(t.render())

    rec = advisor.recommend(max_revocations_per_month=budget)
    print(f"\nrecommendation for <= {budget:g} revocations/month:")
    print(f"  bid ${rec.bid:.3f}/hr ({rec.bid / od:.1f}x on-demand)")
    print(f"  expected {rec.revocations_per_hour * 720:.1f} revocations/month, "
          f"~${rec.est_cost_per_hour:.4f}/hr "
          f"({rec.est_cost_per_hour / od * 100:.0f}% of on-demand)")


if __name__ == "__main__":
    main()
